#include "core/trainer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "attacks/registry.h"
#include "core/checkpoint.h"
#include "core/node_runner.h"
#include "core/server.h"
#include "core/train_loop.h"
#include "core/worker.h"
#include "gars/gar.h"
#include "gars/registry.h"
#include "net/codec.h"
#include "net/wire.h"
#include "nn/zoo.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace garfield::core {

namespace {

using detail::is_decentralized;
using detail::Runtime;
using net::Payload;
using tensor::Rng;

/// Aggregate with a pre-parsed GAR spec sized to the actual reply count.
/// Garfield builds the rule per call because asynchronous collection can
/// legally return any q in [n-f, n]; the rule object is a few words, while
/// all heavy scratch (distance matrix, work vectors) lives in the caller's
/// AggregationContext and is reused across iterations.
Payload aggregate(const gars::GarSpec& spec, std::size_t f,
                  const std::vector<Payload>& inputs,
                  gars::AggregationContext& ctx) {
  assert(!inputs.empty());
  const gars::GarPtr gar = gars::make_gar(spec, inputs.size(), f);
  Payload out;
  gar->aggregate_into(inputs, ctx, out);
  return out;
}

/// Parsed spec plus its resilience floor, resolved once per loop instead of
/// once per iteration. min_n is the option-aware floor (gar_min_n over the
/// parsed spec), so a quorum that satisfies the rule but not its options
/// (e.g. multi_krum:m=8 at a degraded q) skips the round instead of
/// throwing out of the loop thread.
struct GarPlan {
  gars::GarSpec spec;
  std::size_t min_n = 0;
};

GarPlan plan_gar(const std::string& spec_string, std::size_t f) {
  GarPlan plan;
  plan.spec = gars::parse_gar_spec(spec_string);
  plan.min_n = gars::gar_min_n(plan.spec, f);
  return plan;
}

/// Per-rank attack specs for a Byzantine cohort: expand the configured plan
/// over the f declared attackers (validated at config time; re-expanding
/// here keeps the builders independent of validate() being called first).
/// Returns an empty vector when no attack is mounted.
std::vector<attacks::AttackSpec> attack_cohort(const std::string& plan,
                                               std::size_t f) {
  if (plan.empty() || f == 0) return {};
  return attacks::parse_attack_plan(plan).expand(f);
}

bool spec_is_omniscient(const attacks::AttackSpec& spec) {
  return attacks::AttackRegistry::instance().at(spec.name).omniscient;
}

// Runtime moved to core/train_loop.h: the multi-process node runner builds
// and drives the same structure, one rank per process.

data::Dataset make_dataset(const DeploymentConfig& cfg,
                           const tensor::Shape& input_shape,
                           std::size_t classes, std::size_t n, Rng& rng) {
  if (cfg.dataset == "teacher")
    return data::make_teacher_dataset(input_shape, classes, n, rng);
  return data::make_cluster_dataset(input_shape, classes, n, rng,
                                    cfg.dataset_noise);
}

/// Build cluster, servers and workers for a parameter-server deployment
/// (vanilla / crash-tolerant / SSMW / MSMW). Node ids: servers [0, nps),
/// workers [nps, nps + nw).
void build_parameter_server(Runtime& rt) {
  const DeploymentConfig& cfg = rt.config;
  Rng root(cfg.seed);
  Rng model_rng = root.fork(1);   // same weights on every replica
  Rng data_rng = root.fork(2);

  auto proto = nn::make_model(cfg.model, model_rng);
  const tensor::Shape input_shape = proto->input_shape();
  const std::size_t classes = proto->num_classes();

  // Draw train and test from one generator call so they share the same
  // prototypes/teacher, then split.
  data::Dataset full = make_dataset(cfg, input_shape, classes,
                                    cfg.train_size + cfg.test_size, data_rng);
  auto [train, test_set] = full.split(cfg.train_size);
  rt.test = test_set.all();
  std::vector<data::Dataset> shards =
      cfg.non_iid ? data::shard_by_class(train, cfg.nw)
                  : data::shard_iid(train, cfg.nw, data_rng);

  net::Cluster::Options net_opts;
  net_opts.nodes = cfg.nps + cfg.nw;
  net_opts.pool_threads = cfg.pool_threads;
  net_opts.conditions = net::NetworkConditions::parse(cfg.network);
  net_opts.seed = cfg.seed ^ 0xc1u;
  net_opts.transport = rt.transport;  // null => in-process backend
  rt.conditions = net_opts.conditions;
  rt.cluster = std::make_unique<net::Cluster>(net_opts);

  std::vector<net::NodeId> worker_ids, server_ids;
  for (std::size_t s = 0; s < cfg.nps; ++s) server_ids.push_back(s);
  for (std::size_t w = 0; w < cfg.nw; ++w) worker_ids.push_back(cfg.nps + w);

  const std::vector<attacks::AttackSpec> server_specs =
      attack_cohort(cfg.server_attack, cfg.fps);
  for (std::size_t s = 0; s < cfg.nps; ++s) {
    Rng replica_rng = root.fork(1);  // identical initial replicas
    nn::ModelPtr model = nn::make_model(cfg.model, replica_rng);
    std::vector<net::NodeId> peers;
    for (net::NodeId other : server_ids)
      if (other != s) peers.push_back(other);
    const bool byz = !server_specs.empty() && s >= cfg.nps - cfg.fps;
    if (byz) {
      const attacks::AttackSpec& spec =
          server_specs[s - (cfg.nps - cfg.fps)];
      rt.servers.push_back(std::make_unique<ByzantineServer>(
          s, *rt.cluster, std::move(model), cfg.optimizer, worker_ids,
          std::move(peers), attacks::make_attack(spec), root.fork(100 + s),
          cfg.nps, cfg.fps, cfg.model_gar, cfg.gradient_gar));
    } else {
      rt.servers.push_back(std::make_unique<Server>(
          s, *rt.cluster, std::move(model), cfg.optimizer, worker_ids,
          std::move(peers)));
    }
  }

  const std::vector<attacks::AttackSpec> worker_specs =
      attack_cohort(cfg.worker_attack, cfg.fw);
  for (std::size_t w = 0; w < cfg.nw; ++w) {
    Rng replica_rng = root.fork(1);
    nn::ModelPtr model = nn::make_model(cfg.model, replica_rng);
    const net::NodeId id = cfg.nps + w;
    const bool byz = !worker_specs.empty() && w >= cfg.nw - cfg.fw;
    if (byz) {
      const attacks::AttackSpec& spec = worker_specs[w - (cfg.nw - cfg.fw)];
      rt.workers.push_back(std::make_unique<ByzantineWorker>(
          id, *rt.cluster, std::move(model), std::move(shards[w]),
          cfg.batch_size, root.fork(200 + w), attacks::make_attack(spec),
          cfg.worker_momentum, spec_is_omniscient(spec), cfg.nw, cfg.fw,
          cfg.gradient_gar, cfg.nps, cfg.nps + cfg.nw));
    } else {
      rt.workers.push_back(std::make_unique<Worker>(
          id, *rt.cluster, std::move(model), std::move(shards[w]),
          cfg.batch_size, root.fork(200 + w), cfg.worker_momentum));
    }
  }
  // Synchronous replicated-server deployments exchange models step-tagged:
  // every replica publishes its snapshot for iteration t and peers pull
  // exactly t, so the model-GAR aggregates same-iteration states
  // (deterministic) instead of whatever a racing replica held.
  // Asynchronous MSMW keeps untagged live-state serving — its whole point
  // is aggregating whatever is available *now* rather than waiting on
  // stragglers.
  if (cfg.deployment == Deployment::kMsmw && !cfg.asynchronous) {
    for (auto& server : rt.servers)
      server->enable_step_tagged_serving(/*models=*/true,
                                         /*aggr_grads=*/false);
  }
  rt.curves.resize(cfg.nps);
}

/// Build the peer-to-peer runtime: nw nodes, each Server + Worker with the
/// same node id.
void build_decentralized(Runtime& rt) {
  const DeploymentConfig& cfg = rt.config;
  Rng root(cfg.seed);
  Rng data_rng = root.fork(2);

  Rng proto_rng = root.fork(1);
  auto proto = nn::make_model(cfg.model, proto_rng);
  const tensor::Shape input_shape = proto->input_shape();
  const std::size_t classes = proto->num_classes();

  data::Dataset full = make_dataset(cfg, input_shape, classes,
                                    cfg.train_size + cfg.test_size, data_rng);
  auto [train, test_set] = full.split(cfg.train_size);
  rt.test = test_set.all();
  std::vector<data::Dataset> shards =
      cfg.non_iid ? data::shard_by_class(train, cfg.nw)
                  : data::shard_iid(train, cfg.nw, data_rng);

  net::Cluster::Options net_opts;
  net_opts.nodes = cfg.nw;
  net_opts.pool_threads = cfg.pool_threads;
  net_opts.conditions = net::NetworkConditions::parse(cfg.network);
  net_opts.seed = cfg.seed ^ 0xc2u;
  net_opts.transport = rt.transport;  // null => in-process backend
  rt.conditions = net_opts.conditions;
  rt.cluster = std::make_unique<net::Cluster>(net_opts);

  std::vector<net::NodeId> all_ids;
  for (std::size_t i = 0; i < cfg.nw; ++i) all_ids.push_back(i);

  // Peers are Server+Worker pairs: the worker plan drives gradient
  // corruption, the server plan (falling back to the worker plan) drives
  // model/contraction corruption on the same Byzantine peers.
  const std::vector<attacks::AttackSpec> worker_specs =
      attack_cohort(cfg.worker_attack, cfg.fw);
  const std::vector<attacks::AttackSpec> server_specs = attack_cohort(
      cfg.server_attack.empty() ? cfg.worker_attack : cfg.server_attack,
      cfg.fw);
  for (std::size_t i = 0; i < cfg.nw; ++i) {
    Rng replica_rng = root.fork(1);
    nn::ModelPtr server_model = nn::make_model(cfg.model, replica_rng);
    Rng worker_model_rng = root.fork(1);
    nn::ModelPtr worker_model = nn::make_model(cfg.model, worker_model_rng);
    std::vector<net::NodeId> peers;
    for (net::NodeId other : all_ids)
      if (other != i) peers.push_back(other);
    // The two halves of a Byzantine peer corrupt independently: a
    // server-only plan (worker_attack empty) mounts lying model/contraction
    // replies on top of honest gradient service, and vice versa.
    const std::size_t rank = i >= cfg.nw - cfg.fw ? i - (cfg.nw - cfg.fw)
                                                  : cfg.fw;  // honest
    const bool byz_server = !server_specs.empty() && rank < cfg.fw;
    const bool byz_worker = !worker_specs.empty() && rank < cfg.fw;
    if (byz_server) {
      rt.servers.push_back(std::make_unique<ByzantineServer>(
          i, *rt.cluster, std::move(server_model), cfg.optimizer, all_ids,
          std::move(peers), attacks::make_attack(server_specs[rank]),
          root.fork(100 + i), cfg.nw, cfg.fw, cfg.model_gar,
          cfg.gradient_gar));
    } else {
      rt.servers.push_back(std::make_unique<Server>(
          i, *rt.cluster, std::move(server_model), cfg.optimizer, all_ids,
          std::move(peers)));
    }
    if (byz_worker) {
      rt.workers.push_back(std::make_unique<ByzantineWorker>(
          i, *rt.cluster, std::move(worker_model), std::move(shards[i]),
          cfg.batch_size, root.fork(200 + i),
          attacks::make_attack(worker_specs[rank]), cfg.worker_momentum,
          spec_is_omniscient(worker_specs[rank]), cfg.nw, cfg.fw,
          cfg.gradient_gar, 0, cfg.nw));
    } else {
      rt.workers.push_back(std::make_unique<Worker>(
          i, *rt.cluster, std::move(worker_model), std::move(shards[i]),
          cfg.batch_size, root.fork(200 + i), cfg.worker_momentum));
    }
  }
  // Peers exchange both models and contracted gradients step-tagged (the
  // gossip tag additionally encodes the contraction round).
  for (auto& server : rt.servers)
    server->enable_step_tagged_serving(/*models=*/true, /*aggr_grads=*/true);
  rt.curves.resize(cfg.nw);
}

/// Byzantine-recovery state transfer — the live path the checkpoint
/// digest trailer exists for. The recovering replica pulls every live peer
/// server's sealed checkpoint blob over the get_checkpoint RPC, rejects
/// any blob that fails its whole-blob digest (a corrupt_recovery peer
/// tampering post-seal) or carries the wrong dimension, and adopts the
/// freshest surviving state: highest checkpoint iteration, ties broken
/// toward the lowest sender rank — a pure function of the verified reply
/// set, so the pick never depends on reply arrival order. Returns false
/// when no peer blob survives verification; the caller then falls back to
/// the durable local checkpoint.
bool recover_from_peers(Runtime& rt, Server& server, net::NodeId self,
                        std::uint64_t iteration) {
  const DeploymentConfig& cfg = rt.config;
  std::vector<net::NodeId> live;
  for (std::size_t p = 0; p < cfg.nps; ++p) {
    if (p != self && !rt.cluster->is_crashed(p)) live.push_back(p);
  }
  if (live.empty()) return false;
  std::vector<net::Reply> replies = rt.cluster->collect(
      self, live, kGetCheckpoint, iteration, nullptr, live.size(),
      std::chrono::seconds(10));
  const std::size_t dimension = server.parameters().size();
  std::optional<Checkpoint> best;
  net::NodeId best_from = 0;
  for (net::Reply& r : replies) {
    if (!r.payload) continue;
    Checkpoint ckpt;
    try {
      ckpt = decode_checkpoint_blob(
          unpack_bytes(*r.payload,
                       "state transfer from server " + std::to_string(r.from)),
          "state transfer from server " + std::to_string(r.from));
    } catch (const std::exception&) {
      // Digest (or carrier) verification rejected the blob before any
      // field was decoded: drop this peer's offer, keep the honest ones.
      rt.state_transfer_rejects.fetch_add(1);
      continue;
    }
    if (ckpt.parameters.size() != dimension) {
      rt.state_transfer_rejects.fetch_add(1);
      continue;
    }
    if (!best || ckpt.iteration > best->iteration ||
        (ckpt.iteration == best->iteration && r.from < best_from)) {
      best_from = r.from;
      best = std::move(ckpt);
    }
  }
  if (!best) return false;
  server.write_model(best->parameters);
  if (!best->velocity.empty()) {
    server.restore_optimizer_velocity(best->velocity);
  }
  rt.state_transfers.fetch_add(1);
  return true;
}

/// Wire the churn schedule's recovery path: when advance_lifecycle brings
/// a node back up, the hook re-registers its RPC handlers and transfers
/// state. Parameter-server nodes split by id: servers [0, nps) rejoin and
/// restore the last durable checkpoint; workers [nps, nps + nw) just
/// rejoin (their shard is their state). Decentralized peers rejoin both
/// halves and re-sync through the step-tagged model exchange instead — the
/// next write_model folds the live peers' aggregated state in.
/// `only_node` scopes registration to one node id: a multi-process rank
/// owns exactly its own recovery (foreign object copies never serve).
void register_recovery_hooks(Runtime& rt,
                             std::optional<net::NodeId> only_node) {
  if (!rt.conditions.has_churn()) return;
  const DeploymentConfig& cfg = rt.config;
  const auto wanted = [only_node](net::NodeId node) {
    return !only_node || *only_node == node;
  };
  if (is_decentralized(cfg)) {
    for (std::size_t i = 0; i < rt.servers.size(); ++i) {
      if (!wanted(i)) continue;
      Server* server = rt.servers[i].get();
      Worker* worker = rt.workers[i].get();
      rt.cluster->set_recovery_handler(i, [server, worker](std::uint64_t) {
        server->rejoin();
        worker->rejoin();
      });
    }
    return;
  }
  for (std::size_t s = 0; s < cfg.nps; ++s) {
    if (!wanted(s)) continue;
    Server* server = rt.servers[s].get();
    rt.cluster->set_recovery_handler(s, [&rt, server, s](std::uint64_t it) {
      server->rejoin();
      // State transfer, freshest source first: live peer replicas serve
      // their sealed checkpoint blobs (digest-verified on receipt, so a
      // tampering peer is rejected, not trained on), and only when no
      // verified peer blob arrives does the replica fall back to the
      // durable local checkpoint (config validation requires checkpointing
      // whenever a schedule recovers a server). An unreadable checkpoint —
      // none written yet, or torn — leaves the stale pre-crash state in
      // place; the model exchange pulls the replica forward from there.
      if (recover_from_peers(rt, *server, s, it)) return;
      if (rt.config.checkpoint_path.empty()) return;
      try {
        const Checkpoint ckpt = load_checkpoint(rt.config.checkpoint_path);
        server->write_model(ckpt.parameters);
        if (!ckpt.velocity.empty()) {
          server->restore_optimizer_velocity(ckpt.velocity);
        }
      } catch (const std::exception&) {
      }
    });
  }
  for (std::size_t w = 0; w < cfg.nw; ++w) {
    Worker* worker = rt.workers[w].get();
    rt.cluster->set_recovery_handler(cfg.nps + w, [worker](std::uint64_t) {
      worker->rejoin();
    });
  }
}

/// Drive the churn schedule at the top of a loop iteration and park this
/// node's loop while the schedule has it down. Returns the iteration the
/// loop should run (>= it, jumping over a crash window the node slept
/// through), or nullopt when the loop should exit instead: the run
/// aborted, the node never recovers inside the configured horizon, or the
/// recovery wait timed out (a schedule nobody left alive can drive).
std::optional<std::size_t> churn_gate(Runtime& rt, net::NodeId node,
                                      std::size_t it) {
  if (rt.abort.load()) return std::nullopt;
  if (!rt.conditions.has_churn()) return it;
  rt.cluster->advance_lifecycle(it);
  if (!rt.cluster->is_crashed(node)) return it;
  const std::optional<std::uint64_t> up =
      rt.conditions.next_up_iteration(node, it);
  if (!up || *up >= rt.config.iterations) return std::nullopt;
  // Park until live peers drive the schedule past the up-edge. Waiting in
  // short slices keeps the park responsive to a concurrent abort, and the
  // overall deadline guards undrivable schedules.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!rt.abort.load()) {
    const std::optional<std::uint64_t> resumed =
        rt.cluster->wait_until_running(node, std::chrono::milliseconds(50));
    if (resumed) return std::size_t(*resumed);
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
  }
  return std::nullopt;
}

/// The scheduled-availability floor check: at iteration `it` the churn
/// schedule must keep at least `plan.min_n` of the span [lo, hi) up, or
/// the GAR's (n, f) resilience bound is void. Checked against the
/// *schedule* rather than observed replies, so every loop trips it at the
/// same iteration and the whole run aborts deterministically.
bool churn_floor_holds(Runtime& rt, const GarPlan& plan, std::size_t lo,
                       std::size_t hi, std::size_t it, const char* what) {
  if (!rt.conditions.has_churn()) return true;
  const std::size_t down = rt.conditions.count_down(lo, hi, it);
  const std::size_t up = hi - lo - down;
  if (up >= plan.min_n) return true;
  {
    util::MutexLock lock(rt.abort_mutex);
    if (rt.abort_reason.empty()) {
      rt.abort_reason =
          "churn schedule drops " + std::string(what) +
          " availability to " + std::to_string(up) + " node(s) at iteration " +
          std::to_string(it) + ", below the '" + plan.spec.name +
          "' GAR resilience floor min_n=" + std::to_string(plan.min_n) +
          " — aborting instead of aggregating below the (n, f) bound";
    }
  }
  rt.abort.store(true);
  return false;
}

/// Resume support: overwrite every replica's state with the checkpoint.
void resume_replicas(Runtime& rt) {
  if (rt.config.resume_from.empty()) return;
  const Checkpoint ckpt = load_checkpoint(rt.config.resume_from);
  for (auto& server : rt.servers) {
    server->write_model(ckpt.parameters);
    // A resumed momentum run continues with the exact saved velocity.
    if (!ckpt.velocity.empty()) {
      server->restore_optimizer_velocity(ckpt.velocity);
    }
  }
}

/// Persist the reporting server's state on the configured cadence.
void maybe_checkpoint(Runtime& rt, std::size_t server_index, std::size_t it) {
  const DeploymentConfig& cfg = rt.config;
  if (cfg.checkpoint_every == 0 || cfg.checkpoint_path.empty()) return;
  if ((it + 1) % cfg.checkpoint_every != 0 && it + 1 != cfg.iterations)
    return;
  save_checkpoint(
      cfg.checkpoint_path,
      Checkpoint{it + 1, rt.servers[server_index]->parameters(),
                 rt.servers[server_index]->optimizer_velocity()});
}

void maybe_eval(Runtime& rt, std::size_t server_index, std::size_t it) {
  const DeploymentConfig& cfg = rt.config;
  if (cfg.eval_every == 0) return;
  if (it % cfg.eval_every != 0 && it + 1 != cfg.iterations) return;
  Server& s = *rt.servers[server_index];
  EvalPoint p;
  p.iteration = it;
  p.accuracy = s.compute_accuracy(rt.test);
  p.loss = s.compute_loss(rt.test);
  rt.curves[server_index].push_back(p);
}

/// Table-2 probe: pairwise parameter differences across correct replicas,
/// keep the two of largest norm, report the cosine of their angle.
void maybe_alignment(Runtime& rt, std::size_t correct_servers,
                     std::size_t it) {
  const DeploymentConfig& cfg = rt.config;
  if (cfg.alignment_every == 0 || it % cfg.alignment_every != 0) return;
  if (correct_servers < 3) return;  // need >= 2 difference vectors
  std::vector<Payload> params;
  params.reserve(correct_servers);
  for (std::size_t s = 0; s < correct_servers; ++s)
    params.push_back(rt.servers[s]->parameters());
  struct Diff {
    double norm;
    Payload vec;
  };
  std::vector<Diff> diffs;
  for (std::size_t a = 0; a < params.size(); ++a) {
    for (std::size_t b = a + 1; b < params.size(); ++b) {
      Payload d(params[a].size());
      tensor::subtract(params[a], params[b], d);
      diffs.push_back({tensor::norm(d), std::move(d)});
    }
  }
  std::partial_sort(diffs.begin(), diffs.begin() + 2, diffs.end(),
                    [](const Diff& x, const Diff& y) {
                      return x.norm > y.norm;
                    });
  AlignmentSample sample;
  sample.iteration = it;
  sample.max_diff1 = diffs[0].norm;
  sample.max_diff2 = diffs[1].norm;
  // A difference vector's sign is an artifact of pair ordering (a-b vs
  // b-a); alignment is about the angle between the *lines*, so report the
  // magnitude of the cosine.
  sample.cos_phi = std::abs(tensor::cosine(diffs[0].vec, diffs[1].vec));
  util::MutexLock lock(rt.alignment_mutex);
  rt.alignment.push_back(sample);
}

// ------------------------------------------------------------ loop bodies

void vanilla_loop(Runtime& rt, std::size_t s) {
  const DeploymentConfig& cfg = rt.config;
  Server& server = *rt.servers[s];
  const GarPlan avg = plan_gar("average", 0);
  gars::AggregationContext& ctx = server.aggregation_context();
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::optional<std::size_t> next = churn_gate(rt, s, it);
    if (!next) return;
    it = *next;
    if (!churn_floor_holds(rt, avg, cfg.nps, cfg.nps + cfg.nw, it, "worker"))
      return;
    const std::vector<Payload> grads = server.get_gradients(it, cfg.nw);
    if (s == 0) rt.reporting_gradient_counts.push_back(grads.size());
    if (grads.empty()) continue;
    server.update_model(aggregate(avg.spec, 0, grads, ctx));
    if (s == 0) {
      maybe_eval(rt, s, it);
      maybe_checkpoint(rt, s, it);
    }
  }
}

void crash_tolerant_loop(Runtime& rt, std::size_t s) {
  const DeploymentConfig& cfg = rt.config;
  Server& server = *rt.servers[s];
  const GarPlan avg = plan_gar("average", 0);
  gars::AggregationContext& ctx = server.aggregation_context();
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::optional<std::size_t> next = churn_gate(rt, s, it);
    if (!next) return;
    it = *next;
    if (rt.cluster->is_crashed(s)) return;  // crash_primary_at fired
    if (!churn_floor_holds(rt, avg, cfg.nps, cfg.nps + cfg.nw, it, "worker"))
      return;
    const std::vector<Payload> grads = server.get_gradients(it, cfg.nw);
    if (grads.empty()) continue;
    server.update_model(aggregate(avg.spec, 0, grads, ctx));
    maybe_eval(rt, s, it);
    // Fault injection: the primary fail-stops at the configured step.
    if (s == 0 && cfg.crash_primary_at != 0 && it + 1 == cfg.crash_primary_at)
      rt.cluster->crash(s);
  }
}

void ssmw_loop(Runtime& rt, std::size_t s) {
  const DeploymentConfig& cfg = rt.config;
  Server& server = *rt.servers[s];
  const std::size_t q = cfg.asynchronous ? cfg.nw - cfg.fw : cfg.nw;
  const GarPlan grad = plan_gar(cfg.gradient_gar, cfg.fw);
  gars::AggregationContext& ctx = server.aggregation_context();
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::optional<std::size_t> next = churn_gate(rt, s, it);
    if (!next) return;
    it = *next;
    if (!churn_floor_holds(rt, grad, cfg.nps, cfg.nps + cfg.nw, it,
                           "worker"))
      return;
    const std::vector<Payload> grads = server.get_gradients(it, q);
    if (s == 0) rt.reporting_gradient_counts.push_back(grads.size());
    if (grads.size() < grad.min_n) continue;
    server.update_model(aggregate(grad.spec, cfg.fw, grads, ctx));
    if (s == 0) {
      maybe_eval(rt, s, it);
      maybe_checkpoint(rt, s, it);
    }
  }
}

void msmw_loop(Runtime& rt, std::size_t s) {
  const DeploymentConfig& cfg = rt.config;
  Server& server = *rt.servers[s];
  const std::size_t qw = cfg.asynchronous ? cfg.nw - cfg.fw : cfg.nw;
  // Model exchange: pull from peers, then include own state, so the GAR
  // sees (peers pulled + 1) inputs.
  const std::size_t q_peers = cfg.asynchronous
                                  ? cfg.nps - cfg.fps - 1
                                  : cfg.nps - 1;
  const std::size_t correct_servers = cfg.nps - cfg.fps;
  const GarPlan grad = plan_gar(cfg.gradient_gar, cfg.fw);
  const GarPlan model = plan_gar(cfg.model_gar, cfg.fps);
  gars::AggregationContext& ctx = server.aggregation_context();
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::optional<std::size_t> next = churn_gate(rt, s, it);
    if (!next) return;
    it = *next;
    if (!churn_floor_holds(rt, grad, cfg.nps, cfg.nps + cfg.nw, it,
                           "worker") ||
        !churn_floor_holds(rt, model, 0, cfg.nps, it, "server"))
      return;
    const std::vector<Payload> grads = server.get_gradients(it, qw);
    if (s == 0) rt.reporting_gradient_counts.push_back(grads.size());
    if (grads.size() >= grad.min_n) {
      server.update_model(aggregate(grad.spec, cfg.fw, grads, ctx));
    }
    // Publish the post-gradient-step state as this replica's model for
    // iteration `it`, then pull the peers' same-iteration states; a peer
    // that has not reached `it` yet answers not-ready and the transport
    // redelivers — no loop thread ever blocks on a slow replica.
    server.publish_model(it);
    std::vector<Payload> models = server.get_models(it, q_peers);
    models.push_back(server.parameters());
    if (models.size() >= model.min_n) {
      server.write_model(aggregate(model.spec, cfg.fps, models, ctx));
    }
    if (s == 0) {
      maybe_eval(rt, s, it);
      maybe_alignment(rt, correct_servers, it);
      maybe_checkpoint(rt, s, it);
    }
  }
}

void decentralized_loop(Runtime& rt, std::size_t s) {
  const DeploymentConfig& cfg = rt.config;
  Server& server = *rt.servers[s];
  const std::size_t q = cfg.nw - cfg.fw;  // n - f throughout (Listing 3)
  const GarPlan grad = plan_gar(cfg.gradient_gar, cfg.fw);
  const GarPlan model = plan_gar(cfg.model_gar, cfg.fw);
  gars::AggregationContext& ctx = server.aggregation_context();
  // Gossip tags encode (iteration, contraction round) in one integer so
  // both the publisher and the puller of a contract() round agree on what
  // "round r of iteration t" means.
  const std::size_t rounds = cfg.contraction_steps;
  const auto gossip_tag = [rounds](std::size_t it, std::size_t r) {
    return std::uint64_t(it) * std::uint64_t(rounds) + std::uint64_t(r);
  };
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const std::optional<std::size_t> next = churn_gate(rt, s, it);
    if (!next) return;
    it = *next;
    if (!churn_floor_holds(rt, grad, 0, cfg.nw, it, "peer") ||
        !churn_floor_holds(rt, model, 0, cfg.nw, it, "peer"))
      return;
    const std::vector<Payload> grads = server.get_gradients(it, q);
    if (s == 0) rt.reporting_gradient_counts.push_back(grads.size());
    if (grads.size() < grad.min_n) {
      // Skipping the iteration must not wedge the peers: publish explicit
      // "no contribution" markers for every gossip round and the unchanged
      // model, so their tagged pulls resolve instead of retrying into
      // their deadline.
      for (std::size_t step = 0; step < rounds; ++step)
        server.skip_aggr_grad(gossip_tag(it, step));
      server.publish_model(it);
      continue;
    }
    Payload aggr = aggregate(grad.spec, cfg.fw, grads, ctx);
    // contract(): multi-round gossip forcing correct nodes together.
    // Listing 3 enables it for non-iid data; it is keyed on the step
    // count here so the ablation can isolate its effect.
    for (std::size_t step = 0; step < rounds; ++step) {
      server.publish_aggr_grad(gossip_tag(it, step), aggr);
      std::vector<Payload> peer_grads =
          server.get_aggr_grads(gossip_tag(it, step), q - 1, it);
      peer_grads.push_back(aggr);
      if (peer_grads.size() < grad.min_n) {
        for (std::size_t rest = step + 1; rest < rounds; ++rest)
          server.skip_aggr_grad(gossip_tag(it, rest));
        break;
      }
      aggr = aggregate(grad.spec, cfg.fw, peer_grads, ctx);
    }
    server.update_model(aggr);
    server.publish_model(it);
    std::vector<Payload> models = server.get_models(it, q - 1);
    models.push_back(server.parameters());
    if (models.size() >= model.min_n) {
      server.write_model(aggregate(model.spec, cfg.fw, models, ctx));
    }
    if (s == 0) {
      maybe_eval(rt, s, it);
      // Inter-peer drift probe: same methodology as the Table-2 server
      // alignment, applied to the correct peers' model replicas.
      maybe_alignment(rt, cfg.nw - cfg.fw, it);
    }
  }
}

}  // namespace

namespace detail {

void build_runtime(Runtime& rt) {
  if (is_decentralized(rt.config)) {
    build_decentralized(rt);
  } else {
    build_parameter_server(rt);
  }
  // Install the wire codec on every endpoint before any loop starts: the
  // whole cluster speaks one codec (mixed-codec clusters are not a thing —
  // the spec is part of the deployment config every process shares).
  const net::CodecSpec codec = net::CodecSpec::parse(rt.config.codec);
  if (!codec.identity()) {
    for (auto& server : rt.servers) server->set_codec(codec);
    for (auto& worker : rt.workers) worker->set_codec(codec);
  }
}

void register_recovery(Runtime& rt, std::optional<net::NodeId> only_node) {
  register_recovery_hooks(rt, only_node);
}

void maybe_resume(Runtime& rt) { resume_replicas(rt); }

void run_loop(Runtime& rt, std::size_t s) {
  switch (rt.config.deployment) {
    case Deployment::kVanilla: vanilla_loop(rt, s); break;
    case Deployment::kCrashTolerant: crash_tolerant_loop(rt, s); break;
    case Deployment::kSsmw: ssmw_loop(rt, s); break;
    case Deployment::kMsmw: msmw_loop(rt, s); break;
    case Deployment::kDecentralized: decentralized_loop(rt, s); break;
  }
}

TrainResult harvest(Runtime& rt) {
  if (rt.abort.load()) {
    util::MutexLock lock(rt.abort_mutex);
    throw std::runtime_error(rt.abort_reason);
  }

  const DeploymentConfig& config = rt.config;
  TrainResult result;
  result.iterations_run = config.iterations;
  result.reporting_gradient_counts = std::move(rt.reporting_gradient_counts);
  result.net_stats = rt.cluster->stats();
  result.state_transfers = rt.state_transfers.load();
  result.state_transfer_rejects = rt.state_transfer_rejects.load();
  for (const auto& server : rt.servers) {
    result.rejected_payloads += server->rejected_payloads();
  }
  for (const auto& worker : rt.workers) {
    result.gradients_served += worker->gradients_served();
    result.gradients_computed += worker->gradients_computed();
  }
  {
    // Loops are joined; the lock is for the analysis (and costs nothing).
    util::MutexLock lock(rt.alignment_mutex);
    result.alignment = std::move(rt.alignment);
  }

  // Reporting replica: server 0, except after a primary crash in the
  // crash-tolerant protocol, where the next replica takes over (its state
  // may be behind — the paper's "outdated model" note).
  result.curve = std::move(rt.curves[0]);
  if (config.deployment == Deployment::kCrashTolerant &&
      config.crash_primary_at != 0 && rt.curves.size() > 1) {
    for (const EvalPoint& p : rt.curves[1]) {
      if (p.iteration >= config.crash_primary_at) result.curve.push_back(p);
    }
    std::sort(result.curve.begin(), result.curve.end(),
              [](const EvalPoint& a, const EvalPoint& b) {
                return a.iteration < b.iteration;
              });
  }
  if (!result.curve.empty()) {
    result.final_accuracy = result.curve.back().accuracy;
    result.final_loss = result.curve.back().loss;
  } else if (!rt.servers.empty()) {
    result.final_accuracy = rt.servers[0]->compute_accuracy(rt.test);
    result.final_loss = rt.servers[0]->compute_loss(rt.test);
  }
  // Reporting replica's final model, bit-exact — the cross-backend parity
  // probe (a TCP run of a sync deployment must reproduce the in-process
  // model down to the last float).
  if (!rt.servers.empty()) {
    result.final_parameters = rt.servers[0]->parameters();
  }
  return result;
}

}  // namespace detail

TrainResult train(const DeploymentConfig& config) {
  config.validate();
  // The TCP backend spreads the deployment over one OS process per node;
  // everything below this dispatch is the single-process path.
  if (config.transport == "tcp") return detail::train_multiprocess(config);

  detail::Runtime rt;
  rt.config = config;
  detail::build_runtime(rt);
  detail::register_recovery(rt);
  detail::maybe_resume(rt);

  // Spawn one driving thread per server replica / peer. Byzantine servers
  // run the same loop (their lies live in their RPC handlers).
  std::vector<std::thread> threads;
  const std::size_t loops = rt.servers.size();
  threads.reserve(loops);
  for (std::size_t s = 0; s < loops; ++s) {
    threads.emplace_back([&rt, s] { detail::run_loop(rt, s); });
  }
  for (std::thread& t : threads) t.join();

  return detail::harvest(rt);
}

}  // namespace garfield::core
