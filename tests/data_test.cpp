// Unit tests for garfield::data — datasets, sharding, batch sampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.h"
#include "tensor/vecops.h"

namespace gd = garfield::data;
namespace gt = garfield::tensor;

TEST(Dataset, ConstructionValidatesShapes) {
  gt::Tensor inputs({4, 3});
  EXPECT_THROW(gd::Dataset(inputs, {0, 1}, 2), std::invalid_argument);
  gt::Tensor flat({4});
  EXPECT_THROW(gd::Dataset(flat, {0, 1, 2, 3}, 2), std::invalid_argument);
}

TEST(Dataset, GatherPreservesSamples) {
  gt::Tensor inputs({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  gd::Dataset ds(inputs, {0, 1, 2}, 3);
  std::vector<std::size_t> idx{2, 0};
  gd::Batch b = ds.gather(idx);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.inputs.at(0, 0), 5.0F);
  EXPECT_EQ(b.inputs.at(1, 1), 2.0F);
  EXPECT_EQ(b.labels[0], 2u);
}

TEST(Dataset, SplitPartitionsWithoutOverlap) {
  gt::Rng rng(1);
  gd::Dataset full = gd::make_cluster_dataset({4}, 3, 90, rng, 0.5F);
  auto [train, test] = full.split(60);
  EXPECT_EQ(train.size(), 60u);
  EXPECT_EQ(test.size(), 30u);
  EXPECT_THROW(full.split(91), std::invalid_argument);
}

TEST(ClusterDataset, BalancedClasses) {
  gt::Rng rng(2);
  gd::Dataset ds = gd::make_cluster_dataset({8}, 5, 100, rng, 1.0F);
  std::vector<std::size_t> counts(5, 0);
  for (std::size_t label : ds.labels()) counts[label]++;
  for (std::size_t c : counts) EXPECT_EQ(c, 20u);
}

TEST(ClusterDataset, LowNoiseIsLinearlySeparableish) {
  // With tiny noise, nearest-prototype classification should be perfect;
  // we verify samples of the same class are closer to each other than to
  // other classes on average.
  gt::Rng rng(3);
  gd::Dataset ds = gd::make_cluster_dataset({16}, 4, 80, rng, 0.1F);
  gd::Batch all = ds.all();
  double same = 0.0, diff = 0.0;
  std::size_t same_n = 0, diff_n = 0;
  const std::size_t d = 16;
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      std::span<const float> a(all.inputs.data().data() + i * d, d);
      std::span<const float> b(all.inputs.data().data() + j * d, d);
      const double dist = gt::squared_distance(a, b);
      if (all.labels[i] == all.labels[j]) {
        same += dist;
        ++same_n;
      } else {
        diff += dist;
        ++diff_n;
      }
    }
  }
  EXPECT_LT(same / double(same_n), diff / double(diff_n) * 0.2);
}

TEST(TeacherDataset, LabelsInRangeAndNontrivial) {
  gt::Rng rng(4);
  gd::Dataset ds = gd::make_teacher_dataset({32}, 6, 600, rng);
  std::set<std::size_t> seen;
  for (std::size_t label : ds.labels()) {
    EXPECT_LT(label, 6u);
    seen.insert(label);
  }
  EXPECT_GE(seen.size(), 3u);  // the teacher uses several classes
}

TEST(TeacherDataset, DeterministicInSeed) {
  gt::Rng r1(5), r2(5);
  gd::Dataset a = gd::make_teacher_dataset({8}, 4, 50, r1);
  gd::Dataset b = gd::make_teacher_dataset({8}, 4, 50, r2);
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(ShardIid, PartitionsWholeDataset) {
  gt::Rng rng(6);
  gd::Dataset ds = gd::make_cluster_dataset({4}, 2, 103, rng, 0.5F);
  auto shards = gd::shard_iid(ds, 5, rng);
  ASSERT_EQ(shards.size(), 5u);
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  EXPECT_EQ(total, 103u);
  // Near-equal shard sizes (last takes the remainder).
  for (std::size_t i = 0; i + 1 < shards.size(); ++i)
    EXPECT_EQ(shards[i].size(), 20u);
  EXPECT_EQ(shards.back().size(), 23u);
}

TEST(ShardIid, ShardsAreClassMixed) {
  gt::Rng rng(7);
  gd::Dataset ds = gd::make_cluster_dataset({4}, 4, 400, rng, 0.5F);
  auto shards = gd::shard_iid(ds, 4, rng);
  for (const auto& s : shards) {
    std::set<std::size_t> classes(s.labels().begin(), s.labels().end());
    EXPECT_EQ(classes.size(), 4u);  // every shard sees every class
  }
}

TEST(ShardByClass, ShardsAreClassConcentrated) {
  gt::Rng rng(8);
  gd::Dataset ds = gd::make_cluster_dataset({4}, 8, 800, rng, 0.5F);
  auto shards = gd::shard_by_class(ds, 8);
  for (const auto& s : shards) {
    std::set<std::size_t> classes(s.labels().begin(), s.labels().end());
    EXPECT_LE(classes.size(), 2u);  // strongly non-iid
  }
}

TEST(BatchSampler, EmitsRequestedBatchSize) {
  gt::Rng rng(9);
  gd::Dataset ds = gd::make_cluster_dataset({4}, 2, 64, rng, 0.5F);
  gd::BatchSampler sampler(ds, 16, rng.fork(1));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.next().size(), 16u);
}

TEST(BatchSampler, CoversEpochWithoutRepetition) {
  gt::Rng rng(10);
  gt::Tensor inputs({12, 1});
  for (std::size_t i = 0; i < 12; ++i) inputs[i] = float(i);
  gd::Dataset ds(inputs, std::vector<std::size_t>(12, 0), 1);
  gd::BatchSampler sampler(ds, 4, rng.fork(1));
  std::multiset<float> seen;
  for (int b = 0; b < 3; ++b) {
    gd::Batch batch = sampler.next();
    for (std::size_t i = 0; i < batch.size(); ++i)
      seen.insert(batch.inputs[i]);
  }
  EXPECT_EQ(seen.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(seen.count(float(i)), 1u);
}

TEST(BatchSampler, TracksEpochs) {
  gt::Rng rng(11);
  gd::Dataset ds = gd::make_cluster_dataset({2}, 2, 8, rng, 0.5F);
  gd::BatchSampler sampler(ds, 4, rng.fork(1));
  EXPECT_EQ(sampler.epoch(), 0u);
  (void)sampler.next();
  (void)sampler.next();
  (void)sampler.next();  // triggers reshuffle
  EXPECT_EQ(sampler.epoch(), 1u);
}

TEST(BatchSampler, ShortFinalBatch) {
  gt::Rng rng(12);
  gd::Dataset ds = gd::make_cluster_dataset({2}, 2, 10, rng, 0.5F);
  gd::BatchSampler sampler(ds, 4, rng.fork(1));
  (void)sampler.next();
  (void)sampler.next();
  EXPECT_EQ(sampler.next().size(), 2u);  // 10 = 4 + 4 + 2
}

TEST(BatchSampler, DeterministicInSeed) {
  gt::Rng rng(13);
  gd::Dataset ds = gd::make_cluster_dataset({2}, 2, 32, rng, 0.5F);
  gd::BatchSampler s1(ds, 8, gt::Rng(99));
  gd::BatchSampler s2(ds, 8, gt::Rng(99));
  gd::Batch a = s1.next(), b = s2.next();
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.inputs.numel(); ++i)
    EXPECT_EQ(a.inputs[i], b.inputs[i]);
}
