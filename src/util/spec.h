// Typed spec-string machinery shared by the GAR and attack registries.
//
// A *spec string* selects a registered component by name and tunes it with
// typed options:
//
//   spec       := name [ ":" option ("," option)* ]
//   option     := key "=" value
//   name, key  := [A-Za-z0-9_]+
//   value      := anything without ',' or ';' (parsed by the typed getters)
//
// Examples:  "krum"
//            "centered_clip:tau=0.5,iterations=20"
//            "little_is_enough:z=2.5"
//
// Both registries (gars/registry.h, attacks/registry.h) layer their own
// semantics on top: which names exist, which options each factory reads,
// and the consumed-key audit that turns a typo'd option into a hard error
// instead of a silently ignored knob.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace garfield::util {

/// True for a non-empty [A-Za-z0-9_]+ token (names and option keys).
[[nodiscard]] bool valid_identifier(const std::string& s);

/// Typed key/value option bag parsed from a spec string. Getters convert on
/// access and throw std::invalid_argument on malformed values; each getter
/// also marks its key consumed so factories can reject options nobody ever
/// read (typos never pass silently).
class SpecOptions {
 public:
  SpecOptions() = default;

  /// Add a key (throws on duplicate — a spec listing a key twice is a bug).
  void set(const std::string& key, std::string value);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool contains(const std::string& key) const {
    return entries_.count(key) != 0;
  }

  /// Non-negative integer option; `fallback` when absent.
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  /// Floating-point option; `fallback` when absent.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// Raw string option; `fallback` when absent.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const;
  /// Duration option: a non-negative integer with an optional unit suffix
  /// ("50us", "5ms", "2s"; bare integers are microseconds). Negative,
  /// fractional or otherwise malformed values throw — a nonsense duration
  /// must fail at parse/validate time, never run as a wrapped huge delay.
  [[nodiscard]] std::chrono::microseconds get_duration(
      const std::string& key, std::chrono::microseconds fallback) const;
  /// Byte-rate option: a positive number with a mandatory unit suffix
  /// ("1Gbps", "200Mbps", "50MBps"), returned in bytes/second. Zero,
  /// negative, unit-less or otherwise malformed rates throw — a nonsense
  /// bandwidth must fail at parse/validate time, never run as a
  /// zero-division or an effectively-infinite serialization delay.
  [[nodiscard]] double get_byte_rate(const std::string& key,
                                     double fallback) const;

  /// Keys never read by any getter since parsing (drift guard).
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  struct Entry {
    std::string value;
    mutable bool consumed = false;
  };
  std::map<std::string, Entry> entries_;
};

/// A parsed spec string: component name + option bag.
struct ParsedSpec {
  std::string name;
  SpecOptions options;
};

/// Parse "name" or "name:key=value,key=value"; throws std::invalid_argument
/// on grammar violations (empty name, missing '=', duplicate keys). The
/// `context` string prefixes error messages ("gar spec", "attack spec").
[[nodiscard]] ParsedSpec parse_spec(const std::string& spec,
                                    const std::string& context);

}  // namespace garfield::util
