#include "net/transport.h"

#include <thread>
#include <utility>

#include "net/wire.h"

namespace garfield::net {

namespace {

// Envelope field widths, shared between the byte-accounting formulas here
// and the TCP backend's actual frames (tcp_transport.cpp static_asserts
// and runtime-asserts the match). The stream prefix is wire.h's
// kFramePrefixBytes (u32 length + u32 body CRC). Request envelope: type(1)
// + call id(8) + from(4) + to(4) + iteration(8) + window flag(1) +
// window(8) + timeout budget(8) + method length(2) + payload flag(1).
// Reply envelope: type(1) + call id(8) + payload flag(1).
constexpr std::size_t kLenPrefixBytes = kFramePrefixBytes;
constexpr std::size_t kRequestEnvelopeBytes =
    1 + 8 + 4 + 4 + 8 + 1 + 8 + 8 + 2 + 1;
constexpr std::size_t kReplyEnvelopeBytes = 1 + 8 + 1;

}  // namespace

std::size_t request_frame_bytes(const Request& request) {
  const std::size_t payload =
      request.argument ? wire_size(request.argument->size()) : 0;
  return kLenPrefixBytes + kRequestEnvelopeBytes + request.method.size() +
         payload;
}

std::size_t reply_frame_bytes(const PayloadPtr& payload) {
  return kLenPrefixBytes + kReplyEnvelopeBytes +
         (payload ? wire_size(payload->size()) : 0);
}

InProcTransport::InProcTransport(std::size_t pool_threads) {
  std::size_t threads = pool_threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  timer_ = std::make_unique<TimerWheel>(*pool_);
}

InProcTransport::~InProcTransport() { shutdown(); }

void InProcTransport::start(DeliverFn deliver) {
  deliver_ = std::move(deliver);
}

bool InProcTransport::send(Request request, Duration delay,
                           Clock::time_point deadline, Respond on_reply) {
  // Request bytes are charged at send time whether or not scheduling
  // succeeds — the same contract as requests_sent_, which the Cluster
  // bumps even for a dispatch that teardown then drops.
  const std::size_t req_bytes = request_frame_bytes(request);
  bytes_sent_.fetch_add(req_bytes, std::memory_order_relaxed);
  bytes_received_.fetch_add(req_bytes, std::memory_order_relaxed);
  // Reply bytes are charged on the delivery thread just before the reply
  // callback runs, so they happen-before the Cluster's release bump of
  // replies_received_ and every stats() snapshot covers them.
  auto respond = [this,
                  on_reply = std::move(on_reply)](PayloadPtr payload) mutable {
    const std::size_t bytes = reply_frame_bytes(payload);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
    on_reply(std::move(payload));
  };
  std::function<void()> task = [this, request = std::move(request), deadline,
                                respond = std::move(respond)]() mutable {
    deliver_(std::move(request), deadline, std::move(respond));
  };
  return run_after(delay, std::move(task));
}

bool InProcTransport::run_after(Duration delay, std::function<void()>&& task) {
  if (!pool_ || !timer_) return false;
  return delay.count() <= 0 ? pool_->submit(std::move(task))
                            : timer_->schedule_after(delay, std::move(task));
}

void InProcTransport::shutdown() {
  if (down_) return;
  down_ = true;
  // Teardown order matters. First stop the wheel and run its backlog
  // inline: from here on schedule_after() refuses new entries, so a
  // flushed or in-flight not-ready retry resolves its callback (counted as
  // dropped) instead of re-arming a dying timer. The pool is still alive
  // for any zero-delay delivery a flushed task issues. Then the pool
  // drains and joins — draining tasks that try to re-arm still see the
  // stopped-but-alive wheel. The unique_ptrs are destroyed afterwards with
  // nothing in flight.
  timer_->stop_and_flush();
  pool_.reset();
  timer_.reset();
}

}  // namespace garfield::net
