// Figure 9 — communication time of decentralized learning vs the vanilla
// baseline (GPU profile), with the number of nodes (a) and the model
// dimension (b).
//
// Paper shapes: decentralized communication grows quadratically with n
// (O(n^2) messages per round) while vanilla grows linearly; both grow
// linearly with d.
//
// Extension (Fig 9c): the throughput panels hold the adversary benign;
// this trained sweep pushes attack intensities and mixed AttackPlans
// through the *decentralized* trainer's contraction rounds and reports
// final accuracy per (plan, contraction_steps) cell — does contract()
// still force the correct peers together as the declared adversary grows
// stronger?
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/trainer.h"
#include "sim/deployment_sim.h"

namespace {

void contraction_plan_sweep() {
  using namespace garfield::core;
  const std::vector<std::string> plans = {
      "little_is_enough:z=0.5",
      "little_is_enough:z=1.5",
      "little_is_enough:z=3",
      "sign_flip;little_is_enough:z=1.5",  // mixed cohort (fw = 2)
      "2*reversed",
  };
  std::printf("\nFig 9c (extension) — decentralized final accuracy vs "
              "attack plan and contraction rounds\n(median on gradients "
              "and models, n = 8, fw = 2, non-iid shards)\n%-36s", "plan");
  for (std::size_t steps = 0; steps <= 2; ++steps) {
    std::printf("contract=%-7zu", steps);
  }
  std::printf("\n");
  for (const std::string& plan : plans) {
    std::printf("%-36s", plan.c_str());
    for (std::size_t steps = 0; steps <= 2; ++steps) {
      DeploymentConfig cfg;
      cfg.deployment = Deployment::kDecentralized;
      cfg.model = "tiny_mlp";
      cfg.nw = 8;
      cfg.fw = 2;
      cfg.worker_attack = plan;
      cfg.gradient_gar = "median";
      cfg.model_gar = "median";
      cfg.non_iid = true;  // the regime contract() exists for (Listing 3)
      cfg.contraction_steps = steps;
      cfg.batch_size = 16;
      cfg.train_size = 2048;
      cfg.test_size = 512;
      cfg.optimizer.lr.gamma0 = 0.1F;
      cfg.iterations = 100;
      cfg.eval_every = 0;  // final accuracy only
      cfg.seed = 41;
      const TrainResult r = train(garfield::bench::smoke(cfg));
      std::printf("%-16.3f", r.final_accuracy);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace garfield::sim;

  auto setup = [](SimDeployment dep, std::size_t n, std::size_t d) {
    SimSetup s;
    s.deployment = dep;
    s.d = d;
    s.batch_size = 100;
    s.nw = n;
    s.fw = 0;
    s.nps = 1;
    s.fps = 0;
    s.gradient_gar = "median";
    s.model_gar = "median";
    s.device = gpu_profile();
    s.link = gpu_link();
    s.native_runtime = dep == SimDeployment::kVanilla;
    return s;
  };

  std::printf("Fig 9a — communication time vs n (d = 1e6)\n");
  std::printf("%-6s %-18s %-14s\n", "n", "decentralized (s)", "vanilla (s)");
  for (std::size_t n = 2; n <= 6; ++n) {
    std::printf("%-6zu %-18.4f %-14.4f\n", n,
                communication_time(setup(SimDeployment::kDecentralized, n,
                                         1'000'000)),
                communication_time(setup(SimDeployment::kVanilla, n,
                                         1'000'000)));
  }

  std::printf("\nFig 9b — communication time vs d (n = 6)\n");
  std::printf("%-10s %-18s %-14s\n", "d", "decentralized (s)", "vanilla (s)");
  for (std::size_t d : {10'000UL, 100'000UL, 1'000'000UL, 10'000'000UL,
                        100'000'000UL}) {
    std::printf("%-10zu %-18.4f %-14.4f\n", d,
                communication_time(setup(SimDeployment::kDecentralized, 6, d)),
                communication_time(setup(SimDeployment::kVanilla, 6, d)));
  }
  contraction_plan_sweep();

  std::printf("\nPaper shapes: panel (a) quadratic growth for decentralized, "
              "linear for vanilla;\npanel (b) linear in d for both. "
              "Extension shape: contraction rounds keep the\nnon-iid "
              "accuracy from collapsing as plan intensity grows.\n");
  return 0;
}
