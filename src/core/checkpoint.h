// Model checkpointing.
//
// The paper's related work notes that classic parameter servers tolerate
// crashes via checkpoints [6]; garfield ships the same facility so any
// deployment can persist its model state and resume. Checkpoints use the
// CRC-verified wire format — a torn write or disk corruption is detected
// at load time, never silently trained on.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/vecops.h"

namespace garfield::core {

struct Checkpoint {
  std::uint64_t iteration = 0;
  tensor::FlatVector parameters;
  /// Optimizer momentum buffer. Empty when momentum is off (or for
  /// checkpoints written before this field existed — the on-disk format is
  /// one wire message for the parameters optionally followed by a second
  /// one, with a matching iteration tag, for the velocity).
  tensor::FlatVector velocity;
};

/// Atomically write a checkpoint (temp file + rename). Throws
/// std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Load and verify. Throws net::WireError on corruption and
/// std::runtime_error if the file cannot be read.
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

}  // namespace garfield::core
