// Checkpoint & recovery: persist model state during Byzantine training,
// then resume after a (simulated) full-cluster restart.
//
// Demonstrates the wire-format checkpoints (CRC-verified — corrupt the
// file and the load fails loudly instead of training on garbage) and the
// resume_from hook of the trainer.
//
// Usage: ./examples/checkpoint_recovery [checkpoint-file]
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/checkpoint.h"
#include "core/trainer.h"

int main(int argc, char** argv) {
  using namespace garfield::core;
  const std::string path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() /
                  "garfield_demo.ckpt").string();

  DeploymentConfig cfg;
  cfg.deployment = Deployment::kSsmw;
  cfg.model = "mnist_cnn";
  cfg.nw = 7;
  cfg.fw = 1;
  cfg.gradient_gar = "multi_krum";
  cfg.worker_attack = "reversed";
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 512;
  cfg.optimizer.lr.gamma0 = 0.1F;
  cfg.iterations = 100;
  cfg.eval_every = 25;
  cfg.seed = 41;
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 25;

  std::printf("phase 1: train 100 iterations under attack, checkpoint "
              "every 25 -> %s\n", path.c_str());
  const TrainResult first = train(cfg);
  std::printf("  accuracy after phase 1: %.3f\n", first.final_accuracy);

  const Checkpoint ckpt = load_checkpoint(path);
  std::printf("  checkpoint: iteration %llu, %zu parameters, CRC verified\n",
              static_cast<unsigned long long>(ckpt.iteration),
              ckpt.parameters.size());

  std::printf("phase 2: 'restart' the cluster and resume from the "
              "checkpoint for 50 more iterations\n");
  DeploymentConfig resume = cfg;
  resume.resume_from = path;
  resume.checkpoint_path.clear();
  resume.checkpoint_every = 0;
  resume.iterations = 50;
  resume.eval_every = 10;
  // Keep the seed: it also synthesizes the dataset, so changing it would
  // swap the learning task itself and fake a restart-from-scratch dip.
  resume.seed = cfg.seed;
  const TrainResult second = train(resume);
  for (const EvalPoint& p : second.curve) {
    std::printf("  resumed iteration %3zu: accuracy %.3f\n", p.iteration,
                p.accuracy);
  }
  std::printf("final accuracy after recovery: %.3f (phase 1 ended at "
              "%.3f — no restart-from-scratch dip)\n",
              second.final_accuracy, first.final_accuracy);
  std::filesystem::remove(path);
  return second.final_accuracy > 0.5 ? 0 : 1;
}
