// Annotated mutex / scoped-lock / condition-variable wrappers — the
// Abseil-style carriers for the Clang thread-safety analysis
// (util/thread_annotations.h).
//
// util::Mutex is std::mutex declared as a *capability*: fields tagged
// GARFIELD_GUARDED_BY(mu) and helpers tagged GARFIELD_REQUIRES(mu) are
// checked against it at compile time under the `clang-analyze` preset.
// util::MutexLock is the annotated std::lock_guard / std::unique_lock
// stand-in (scoped acquire, destructor release). util::CondVar pairs with
// util::Mutex the way absl::CondVar pairs with absl::Mutex: every wait
// states GARFIELD_REQUIRES(mu), so "waited without the lock" is a compile
// error rather than undefined behaviour at 3am.
//
// CondVar is built on std::condition_variable_any, which (un)locks the
// Mutex through its public lock()/unlock() — those calls happen inside the
// standard library (system headers, analysis-exempt), so the capability
// state the analysis tracks across a wait stays "held", matching the
// actual postcondition of every wait overload.
//
// Everything here is header-only and zero-state beyond the wrapped
// std primitives; under GCC the annotations vanish and the wrappers
// compile to exactly the std types they wrap.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace garfield::util {

/// std::mutex as a Clang capability. Satisfies BasicLockable/Lockable, so
/// it still composes with std facilities where needed — but annotated code
/// should hold it through MutexLock.
class GARFIELD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GARFIELD_ACQUIRE() { raw_.lock(); }
  void unlock() GARFIELD_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool try_lock() GARFIELD_TRY_ACQUIRE(true) {
    return raw_.try_lock();
  }

 private:
  std::mutex raw_;
};

/// Scoped lock over util::Mutex (the annotated std::lock_guard). Acquires
/// in the constructor, releases in the destructor; no unlock-early surface,
/// so the analysis can treat the critical section as exactly the scope.
class GARFIELD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GARFIELD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GARFIELD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. All waits require the mutex
/// held (compile-checked); they release it while blocked and reacquire
/// before returning, exactly like std::condition_variable with a
/// unique_lock — the scoped MutexLock in the caller stays the single
/// owner of the critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) GARFIELD_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) GARFIELD_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) GARFIELD_REQUIRES(mu) {
    return cv_.wait_for(mu, dur, std::move(pred));
  }

  template <typename ClockT, typename DurationT>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<ClockT, DurationT>& deadline)
      GARFIELD_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <typename ClockT, typename DurationT, typename Predicate>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<ClockT, DurationT>& deadline,
                  Predicate pred) GARFIELD_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace garfield::util
