// Figure 7 — overhead breakdown in the CPU-based experiment.
//
// Per-iteration latency of each deployment training ResNet-50 (d = 23.5M)
// on the CPU-cluster profile, split into computation / communication /
// aggregation, as in the paper's stacked bars. The TF (vanilla) bar uses
// the native runtime, whose computation and communication the paper cannot
// separate either — we print them anyway.
//
// Paper shapes: computation ~constant (~1.6 s) across systems;
// communication dominates (75-86% of the fault-tolerance overhead);
// aggregation contributes ~11% or less; decentralized aggregation is about
// twice SSMW's (extra model-aggregation step).
#include <cstdio>

#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

int main() {
  using namespace garfield::sim;

  std::printf("Fig 7 — per-iteration latency breakdown, ResNet-50, CPU "
              "cluster (nw=18, fw=3, nps=6, fps=1)\n\n");
  std::printf("%-16s %-14s %-16s %-14s %-10s\n", "System", "Computation",
              "Communication", "Aggregation", "Total");

  const struct {
    const char* name;
    SimDeployment dep;
    bool native;
  } systems[] = {
      {"TF (vanilla)", SimDeployment::kVanilla, true},
      {"Crash-tolerant", SimDeployment::kCrashTolerant, false},
      {"SSMW", SimDeployment::kSsmw, false},
      {"MSMW", SimDeployment::kMsmw, false},
      {"Dec. Learn.", SimDeployment::kDecentralized, false},
  };

  IterationBreakdown vanilla{};
  for (const auto& sys : systems) {
    SimSetup s;
    s.deployment = sys.dep;
    s.d = model_spec("ResNet-50").parameters;
    s.batch_size = 32;
    s.nw = 18;
    s.fw = 3;
    s.nps = 6;
    s.fps = 1;
    s.gradient_gar = "multi_krum";
    s.model_gar = "median";
    s.device = cpu_profile();
    s.native_runtime = sys.native;
    const IterationBreakdown b = simulate_iteration(s);
    if (sys.native) vanilla = b;
    std::printf("%-16s %-14.2f %-16.2f %-14.3f %-10.2f\n", sys.name,
                b.computation, b.communication, b.aggregation, b.total());
  }

  // Overhead attribution for the headline numbers of §6.6.
  SimSetup msmw;
  msmw.deployment = SimDeployment::kMsmw;
  msmw.d = model_spec("ResNet-50").parameters;
  msmw.batch_size = 32;
  msmw.nw = 18;
  msmw.fw = 3;
  msmw.nps = 6;
  msmw.fps = 1;
  msmw.gradient_gar = "multi_krum";
  msmw.model_gar = "median";
  msmw.device = cpu_profile();
  const IterationBreakdown mb = simulate_iteration(msmw);
  const double overhead = mb.total() - vanilla.total();
  std::printf("\nMSMW overhead vs vanilla: %.2f s/iteration, of which "
              "communication %.0f%%, aggregation %.0f%%\n",
              overhead,
              100.0 * (mb.communication - vanilla.communication) / overhead,
              100.0 * (mb.aggregation - vanilla.aggregation) / overhead);
  return 0;
}
