// Figure 12 (appendix) — convergence of Garfield's protocol with MDA as
// the GAR, against vanilla and crash-tolerant baselines; per iteration (a)
// and over wall-clock time (b), on the CPU profile.
//
// Paper shapes: (a) all systems share the same per-iteration convergence
// (MDA adds no iteration-count overhead); (b) the cost appears on the time
// axis — vanilla reaches 60% first, crash-tolerant ~15% later, the
// Byzantine (MDA) deployment ~23% later than crash-tolerant.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/trainer.h"
#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace {

using namespace garfield::core;
namespace gs = garfield::sim;

double latency(gs::SimDeployment dep, bool native, const char* gar) {
  gs::SimSetup s;
  s.deployment = dep;
  s.d = gs::model_spec("CifarNet").parameters;
  s.batch_size = 32;
  s.nw = 9;
  s.fw = 1;
  s.nps = 3;
  s.fps = 1;
  s.gradient_gar = gar;
  s.model_gar = "mda";
  s.device = gs::cpu_profile();
  s.native_runtime = native;
  return gs::simulate_iteration(s).total();
}

}  // namespace

int main() {
  DeploymentConfig cfg;
  cfg.model = "tiny_mlp";
  cfg.batch_size = 16;
  cfg.train_size = 2048;
  cfg.test_size = 512;
  cfg.dataset_noise = 1.2F;
  cfg.optimizer.lr.gamma0 = 0.08F;
  cfg.iterations = 300;
  cfg.eval_every = 30;
  cfg.seed = 55;
  cfg.nw = 9;

  struct Row {
    std::string name;
    TrainResult result;
    double secs_per_iter;
  };
  std::vector<Row> rows;
  {
    DeploymentConfig c = cfg;
    c.deployment = Deployment::kVanilla;
    rows.push_back({"vanilla", train(garfield::bench::smoke(c)),
                    latency(gs::SimDeployment::kVanilla, true, "average")});
  }
  {
    DeploymentConfig c = cfg;
    c.deployment = Deployment::kCrashTolerant;
    c.nps = 3;
    rows.push_back({"crash_tolerant", train(garfield::bench::smoke(c)),
                    latency(gs::SimDeployment::kCrashTolerant, false,
                            "average")});
  }
  {
    // Garfield with MDA on both gradients and models (MSMW).
    DeploymentConfig c = cfg;
    c.deployment = Deployment::kMsmw;
    c.fw = 1;
    c.nps = 3;
    c.fps = 0;
    c.gradient_gar = "mda";
    c.model_gar = "mda";
    rows.push_back({"garfield_mda", train(garfield::bench::smoke(c)),
                    latency(gs::SimDeployment::kMsmw, false, "mda")});
  }

  std::printf("Fig 12a — convergence per iteration (MDA as GAR)\n");
  std::printf("%-10s %-12s %-16s %-14s\n", "iteration", "vanilla",
              "crash_tolerant", "garfield_mda");
  const auto& ref = rows[0].result.curve;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::printf("%-10zu", ref[i].iteration);
    for (const Row& r : rows) {
      std::printf("%-14.3f",
                  i < r.result.curve.size() ? r.result.curve[i].accuracy
                                            : 0.0);
    }
    std::printf("\n");
  }

  std::printf("\nFig 12b — the same runs over wall-clock time\n");
  std::printf("time to reach accuracy 0.60:\n");
  for (const Row& r : rows) {
    for (const EvalPoint& p : r.result.curve) {
      if (p.accuracy >= 0.60) {
        std::printf("  %-16s %8.1f s   (%.2f s/iteration)\n", r.name.c_str(),
                    double(p.iteration) * r.secs_per_iter, r.secs_per_iter);
        break;
      }
    }
  }
  std::printf("\nPaper shape: identical per-iteration convergence; on the "
              "time axis vanilla\nleads, crash-tolerant second, the MDA "
              "deployment last by a ~23%% margin.\n");
  return 0;
}
