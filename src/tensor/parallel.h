// Minimal data-parallel helper.
//
// The paper parallelizes GAR coordinate work across CPU cores (§4.3: "each
// of the m >= 1 available cores processes a continuous share of n/m
// coordinates"). parallel_for reproduces exactly that partitioning, both
// for coordinate shards (default grain) and for coarse work items such as
// the rows of a Krum distance matrix (grain = 1).
//
// Thread-count resolution order:
//   1. set_parallel_threads(n) process-wide override (n = 0 clears it);
//   2. the GARFIELD_THREADS environment variable (positive integer);
//   3. std::thread::hardware_concurrency(), at least 1.
// Shard boundaries depend only on (n, grain, thread count) and every shard
// writes disjoint output ranges, so results are bitwise identical for any
// thread count — GARFIELD_THREADS=1 is the reference serial run.
#pragma once

#include <cstddef>
#include <functional>

namespace garfield::tensor {

/// Default minimum work per shard, in cheap (per-coordinate) items. Below
/// roughly this much work, spawning a thread costs more than it saves.
/// Callers whose items are heavier scale it down by the per-item cost
/// (e.g. grain = kParallelForGrain / d for O(d) items).
inline constexpr std::size_t kParallelForGrain = 1 << 16;

/// Number of worker threads parallel_for will use (see resolution order
/// above; always >= 1).
[[nodiscard]] std::size_t parallel_threads();

/// Process-wide thread-count override; 0 restores the default
/// (GARFIELD_THREADS / hardware_concurrency). Used by benches to sweep
/// serial-vs-parallel on one process.
void set_parallel_threads(std::size_t n);

/// Run fn(begin, end) over contiguous shards of [0, n). `grain` is the
/// minimum number of items per shard: cheap per-item work keeps the default
/// (~64k items, below which threads cost more than they save); heavy items
/// (e.g. one O(d) distance computation each) pass grain = 1. Runs inline
/// when only one shard results.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// parallel_for with the default coordinate-work grain (~64k items).
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace garfield::tensor
