// Gradient Aggregation Rules (GARs) — the paper's §3.1.
//
// A GAR is a function (R^d)^q -> R^d aggregating q gradient (or model)
// vectors, of which up to f may be Byzantine. Garfield mirrors the paper's
// two-call interface: make_gar(name, n, f) is init(), Gar::aggregate() is
// aggregate(). Each rule validates its resilience precondition (the
// inequality relating q and f) at construction.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/vecops.h"

namespace garfield::gars {

using tensor::FlatVector;

/// Interface of a gradient aggregation rule.
class Gar {
 public:
  virtual ~Gar() = default;

  Gar(const Gar&) = delete;
  Gar& operator=(const Gar&) = delete;

  /// Aggregate exactly n() vectors of equal dimension into one.
  [[nodiscard]] virtual FlatVector aggregate(
      std::span<const FlatVector> inputs) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t f() const { return f_; }

 protected:
  Gar(std::size_t n, std::size_t f) : n_(n), f_(f) {}

  /// Throws std::invalid_argument unless sizes match (n inputs, equal d>0).
  void check_inputs(std::span<const FlatVector> inputs) const;

  std::size_t n_;
  std::size_t f_;
};

using GarPtr = std::unique_ptr<Gar>;

/// Names accepted by make_gar: "average", "median", "trimmed_mean",
/// "krum", "multi_krum", "mda", "bulyan", plus the extended rules the
/// paper's related-work section points at: "geometric_median" (RFA),
/// "centered_clip", "cge" (norm-based comparative gradient elimination).
[[nodiscard]] std::vector<std::string> gar_names();

/// Minimum number of inputs rule `name` needs to tolerate f Byzantine ones.
/// average: 1 (tolerates none); median/trimmed_mean/mda: 2f+1;
/// krum/multi_krum: 2f+3; bulyan: 4f+3.
[[nodiscard]] std::size_t gar_min_n(const std::string& name, std::size_t f);

/// The paper's init(): build a rule for n inputs with at most f Byzantine.
/// Throws std::invalid_argument for unknown names or n < gar_min_n(name, f).
[[nodiscard]] GarPtr make_gar(const std::string& name, std::size_t n,
                              std::size_t f);

// ------------------------------------------------------------------------
// Concrete rules. Exposed so callers can construct them directly; most code
// should go through make_gar.

/// Arithmetic mean — the vanilla (non-resilient) baseline.
class Average final : public Gar {
 public:
  Average(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "average"; }
};

/// Coordinate-wise median [Xie et al.]. Requires n >= 2f+1. O(nd).
class Median final : public Gar {
 public:
  Median(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "median"; }
};

/// Coordinate-wise trimmed mean: drop the f lowest and f highest values of
/// every coordinate, average the rest. Requires n >= 2f+1. O(n log n · d).
class TrimmedMean final : public Gar {
 public:
  TrimmedMean(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "trimmed_mean"; }
};

/// Cache of pairwise squared distances over a fixed input set, with O(1)
/// logical removal. §4.4: "aggregating gradients may require multiple
/// iterations, calculating some distance-based scores ... we cache the
/// results of each of these iterations and hence remove redundant
/// computations" — Bulyan's iterated-Krum phase computes the O(n^2 d)
/// distance matrix once and reuses it across all selection rounds.
class DistanceCache {
 public:
  explicit DistanceCache(std::span<const FlatVector> inputs);

  [[nodiscard]] double squared_distance(std::size_t i, std::size_t j) const {
    return matrix_[i * n_ + j];
  }
  /// Logically remove an input from the active set.
  void remove(std::size_t i) { active_[i] = false; }
  [[nodiscard]] bool is_active(std::size_t i) const { return active_[i]; }
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  std::vector<double> matrix_;
  std::vector<bool> active_;
};

/// Krum [Blanchard et al.]: score each vector by the sum of squared
/// distances to its n-f-2 nearest neighbours; return the argmin vector.
/// Requires n >= 2f+3. O(n^2 d).
class Krum : public Gar {
 public:
  Krum(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "krum"; }

  /// Index of the Krum-selected vector (exposed for Bulyan and tests).
  [[nodiscard]] std::size_t select(std::span<const FlatVector> inputs) const;

  /// Krum selection over the active subset of a distance cache — the
  /// O(q^2) re-scoring path used by Bulyan's iterations, with no O(d) work.
  [[nodiscard]] std::size_t select_cached(const DistanceCache& cache,
                                          std::span<const FlatVector> inputs)
      const;

 protected:
  /// Krum scores for an arbitrary pool of q >= 3 vectors with the
  /// neighbourhood size q-f-2 (clamped to >= 1).
  [[nodiscard]] std::vector<double> scores(
      std::span<const FlatVector> inputs) const;

  /// Input indices ordered by ascending score. Exact score ties are real
  /// (mutual nearest neighbours score identically), so ties break on the
  /// vectors' lexicographic order — this keeps aggregation invariant to
  /// reply-arrival order, which is adversarial under asynchrony.
  [[nodiscard]] std::vector<std::size_t> selection_order(
      std::span<const FlatVector> inputs) const;
};

/// Multi-Krum: average the m = n-f-2 smallest-scoring vectors.
class MultiKrum final : public Krum {
 public:
  MultiKrum(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "multi_krum"; }

  [[nodiscard]] std::size_t m() const { return m_; }

 private:
  std::size_t m_;
};

/// MDA (Minimum-Diameter Averaging) [Rousseeuw]: average the subset of
/// size n-f with the smallest diameter. Requires n >= 2f+1.
/// O(C(n,f) + n^2 d) — exponential when f = Θ(n).
class Mda final : public Gar {
 public:
  Mda(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "mda"; }
};

/// Bulyan [El Mhamdi et al.]: iterate Krum n-2f times to build a selection
/// set, then per coordinate average the n-4f values closest to the median
/// of the selected set. Requires n >= 4f+3. O(n^2 d).
class Bulyan final : public Gar {
 public:
  Bulyan(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "bulyan"; }
};

// ------------------------------------------------------------------------
// Extended rules (beyond the four the paper ships; §7 notes Garfield "can
// straightforwardly include the other ones").

/// Geometric median via the smoothed Weiszfeld iteration (RFA, Pillutla et
/// al.). Minimizes the sum of Euclidean distances to the inputs — a
/// rotation-invariant robust center. Requires n >= 2f+1. O(k n d) for k
/// Weiszfeld rounds.
class GeometricMedian final : public Gar {
 public:
  struct Options {
    std::size_t max_iterations = 32;
    double tolerance = 1e-8;      ///< relative movement stopping criterion
    double smoothing = 1e-6;      ///< Weiszfeld denominator floor
  };

  GeometricMedian(std::size_t n, std::size_t f, Options options);
  GeometricMedian(std::size_t n, std::size_t f)
      : GeometricMedian(n, f, Options{}) {}
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override {
    return "geometric_median";
  }

 private:
  Options options_;
};

/// Centered clipping (Karimireddy et al.): iteratively re-center on the
/// clipped mean — every input's deviation from the current center is
/// clipped to radius tau before averaging. Requires n >= 2f+1. O(k n d).
class CenteredClip final : public Gar {
 public:
  struct Options {
    /// Re-centering rounds. Each round shrinks a far outlier's leverage to
    /// at most tau/n, so ~10 rounds collapse even 1e4-scale outliers.
    std::size_t iterations = 10;
    double tau = 0.0;  ///< clipping radius; 0 = auto (median distance)
  };

  CenteredClip(std::size_t n, std::size_t f, Options options);
  CenteredClip(std::size_t n, std::size_t f)
      : CenteredClip(n, f, Options{}) {}
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "centered_clip"; }

 private:
  Options options_;
};

/// Comparative gradient elimination (norm filtering): sort inputs by
/// Euclidean norm and average the n-f smallest. Cheap — O(n d) — but only
/// robust against magnitude-based attacks. Requires n >= 2f+1.
class Cge final : public Gar {
 public:
  Cge(std::size_t n, std::size_t f);
  FlatVector aggregate(std::span<const FlatVector> inputs) const override;
  [[nodiscard]] std::string name() const override { return "cge"; }
};

}  // namespace garfield::gars
