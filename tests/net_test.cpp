// Tests for garfield::net — thread pool, pull-RPC, fastest-q collection,
// crash and straggler injection, traffic accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "net/cluster.h"
#include "net/thread_pool.h"

namespace gn = garfield::net;
using namespace std::chrono_literals;

TEST(ThreadPool, ExecutesAllTasks) {
  gn::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (count.load() < 100 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  gn::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

namespace {

gn::Cluster::Options small_cluster(std::size_t n) {
  gn::Cluster::Options opts;
  opts.nodes = n;
  return opts;
}

/// Register an echo handler that replies with a constant payload.
void serve_constant(gn::Cluster& cluster, gn::NodeId node, float value,
                    std::size_t d = 4) {
  cluster.register_handler(node, "echo",
                           [value, d](const gn::Request&) {
                             return gn::Payload(d, value);
                           });
}

}  // namespace

TEST(Cluster, RejectsZeroNodes) {
  gn::Cluster::Options opts;
  opts.nodes = 0;
  EXPECT_THROW(gn::Cluster cluster(opts), std::invalid_argument);
}

TEST(Cluster, SingleCallRoundTrip) {
  gn::Cluster cluster(small_cluster(2));
  serve_constant(cluster, 1, 7.0F);
  std::promise<std::optional<gn::Payload>> done;
  cluster.call(0, 1, "echo", 0, nullptr,
               [&done](std::optional<gn::Payload> p) {
                 done.set_value(std::move(p));
               });
  auto result = done.get_future().get();
  ASSERT_TRUE(result.has_value());
  EXPECT_FLOAT_EQ((*result)[0], 7.0F);
}

TEST(Cluster, UnknownMethodYieldsNoReply) {
  gn::Cluster cluster(small_cluster(2));
  std::promise<std::optional<gn::Payload>> done;
  cluster.call(0, 1, "nope", 0, nullptr,
               [&done](std::optional<gn::Payload> p) {
                 done.set_value(std::move(p));
               });
  EXPECT_FALSE(done.get_future().get().has_value());
}

TEST(Cluster, RequestCarriesArgumentAndIteration) {
  gn::Cluster cluster(small_cluster(2));
  cluster.register_handler(1, "probe", [](const gn::Request& req) {
    EXPECT_EQ(req.from, 0u);
    EXPECT_EQ(req.to, 1u);
    EXPECT_EQ(req.iteration, 42u);
    EXPECT_TRUE(req.argument);
    return gn::Payload{float(req.argument->at(0) * 2)};
  });
  auto arg = std::make_shared<const gn::Payload>(gn::Payload{21.0F});
  std::promise<std::optional<gn::Payload>> done;
  cluster.call(0, 1, "probe", 42, arg,
               [&done](std::optional<gn::Payload> p) {
                 done.set_value(std::move(p));
               });
  auto result = done.get_future().get();
  ASSERT_TRUE(result.has_value());
  EXPECT_FLOAT_EQ((*result)[0], 42.0F);
}

TEST(Cluster, CollectReturnsQFastest) {
  gn::Cluster cluster(small_cluster(5));
  for (gn::NodeId i = 1; i < 5; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3, 4};
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 3);
  EXPECT_EQ(replies.size(), 3u);
}

TEST(Cluster, CollectAllWhenQEqualsN) {
  gn::Cluster cluster(small_cluster(4));
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3};
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 3);
  EXPECT_EQ(replies.size(), 3u);
}

TEST(Cluster, CollectRejectsOversizedQuorum) {
  gn::Cluster cluster(small_cluster(3));
  std::vector<gn::NodeId> peers{1, 2};
  EXPECT_THROW((void)cluster.collect(0, peers, "echo", 0, nullptr, 3),
               std::invalid_argument);
}

TEST(Cluster, CrashedNodeNeverReplies) {
  gn::Cluster cluster(small_cluster(4));
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i));
  cluster.crash(2);
  EXPECT_TRUE(cluster.is_crashed(2));
  std::vector<gn::NodeId> peers{1, 2, 3};
  // q = 2 is satisfiable by the two live nodes.
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 2);
  EXPECT_EQ(replies.size(), 2u);
  for (const auto& r : replies) EXPECT_NE(r.from, 2u);
}

TEST(Cluster, CollectTimesOutGracefullyWhenQuorumImpossible) {
  gn::Cluster cluster(small_cluster(3));
  serve_constant(cluster, 1, 1.0F);
  cluster.crash(2);
  std::vector<gn::NodeId> peers{1, 2};
  // q = 2 but only one live replier: returns 1 reply once both callbacks
  // resolved (crashed responds nullopt), well before the deadline.
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 2, 2s);
  EXPECT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].from, 1u);
}

TEST(Cluster, StragglersLoseTheRace) {
  gn::Cluster cluster(small_cluster(4));
  for (gn::NodeId i = 1; i < 4; ++i) serve_constant(cluster, i, float(i));
  cluster.set_straggler_lag(1, 300ms);
  std::vector<gn::NodeId> peers{1, 2, 3};
  auto replies = cluster.collect(0, peers, "echo", 0, nullptr, 2);
  ASSERT_EQ(replies.size(), 2u);
  for (const auto& r : replies) EXPECT_NE(r.from, 1u);
}

TEST(Cluster, HandlerMayDeclineToReply) {
  gn::Cluster cluster(small_cluster(2));
  cluster.register_handler(1, "maybe", [](const gn::Request&) {
    return std::optional<gn::Payload>{};  // Byzantine "dropped"
  });
  std::promise<std::optional<gn::Payload>> done;
  cluster.call(0, 1, "maybe", 0, nullptr,
               [&done](std::optional<gn::Payload> p) {
                 done.set_value(std::move(p));
               });
  EXPECT_FALSE(done.get_future().get().has_value());
}

TEST(Cluster, StatsCountTraffic) {
  gn::Cluster cluster(small_cluster(3));
  serve_constant(cluster, 1, 1.0F, 10);
  serve_constant(cluster, 2, 2.0F, 10);
  auto arg = std::make_shared<const gn::Payload>(gn::Payload(5, 0.0F));
  std::vector<gn::NodeId> peers{1, 2};
  (void)cluster.collect(0, peers, "echo", 0, arg, 2);
  const gn::NetStats stats = cluster.stats();
  EXPECT_EQ(stats.requests_sent, 2u);
  EXPECT_EQ(stats.replies_received, 2u);
  // 2 requests x 5 floats + 2 replies x 10 floats.
  EXPECT_EQ(stats.floats_transferred, 30u);
}

TEST(Cluster, ConcurrentCollectsDoNotInterfere) {
  gn::Cluster cluster(small_cluster(6));
  for (gn::NodeId i = 1; i < 6; ++i) serve_constant(cluster, i, float(i));
  std::vector<gn::NodeId> peers{1, 2, 3, 4, 5};
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cluster, &peers, &total] {
      for (int k = 0; k < 20; ++k) {
        auto replies =
            cluster.collect(0, peers, "echo", std::uint64_t(k), nullptr, 3);
        total.fetch_add(int(replies.size()));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 4 * 20 * 3);
}

TEST(Cluster, LatencyAndJitterDelayDelivery) {
  gn::Cluster::Options opts;
  opts.nodes = 2;
  opts.base_latency = 50ms;
  gn::Cluster cluster(opts);
  serve_constant(cluster, 1, 1.0F);
  const auto start = std::chrono::steady_clock::now();
  std::vector<gn::NodeId> peers{1};
  (void)cluster.collect(0, peers, "echo", 0, nullptr, 1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 45ms);
}
