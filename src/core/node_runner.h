// Multi-process deployment runner: one OS process per node.
//
// Under `transport = tcp` the deployment leaves the single address space
// and takes the paper's actual shape (§4: one Garfield process per
// machine, gRPC between them — here localhost TCP with net/wire framing):
//
//   train(config)                                 parent process
//     └─ detail::train_multiprocess(config)
//          1. binds one 127.0.0.1:0 listener per rank *before* forking —
//             ports are kernel-assigned, race-free, and every child's
//             connect() lands on an established backlog;
//          2. writes the config as formatted text to a temp dir (floats
//             round-trip bit-exactly — see fmt_float in controller.cpp);
//          3. fork+execs the `garfield_node` launcher once per rank, each
//             child inheriting exactly its own listening socket;
//          4. waits for every child, then reads rank 0's result blob.
//
//   garfield_node --rank r ...                    child process, per rank
//     └─ run_node(config, options)
//          builds the FULL deterministic object graph (datasets and every
//          replica are pure functions of the config seed, so all processes
//          hold bitwise-identical copies) over a TcpTransport, but drives
//          only rank r's loop; requests addressed to other ranks leave the
//          process as framed stream exchanges. Two barriers bracket the
//          run: ready (no pull may race a sibling's handler registration —
//          a missing handler is a silent decline and would change quorum
//          membership) and done (keep serving step-tagged state until
//          every driving rank finished). Rank 0 then harvests and writes
//          the result blob the parent returns from train().
//
// Known scope limits, enforced by DeploymentConfig::validate(): the
// alignment probe and crash_primary_at need a shared address space and are
// rejected under tcp; NetStats / worker counters in the returned result
// are rank 0's process-local view.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/trainer.h"

namespace garfield::core {

/// Per-process identity handed to run_node() by the garfield_node launcher.
struct NodeOptions {
  /// This process's node id (== its cluster NodeId).
  std::size_t rank = 0;
  /// Total processes in the deployment (== config.total_nodes()).
  std::size_t nodes = 1;
  /// Inherited listening socket, already bound + listening on
  /// ports[rank]; the transport takes ownership.
  int listen_fd = -1;
  /// Every rank's listener port, indexed by rank.
  std::vector<std::uint16_t> ports;
  /// Where rank 0 serializes its TrainResult ("" on other ranks).
  std::string result_path;
};

/// Child-process entry: run this rank of the deployment to completion.
/// Returns the process exit code (0 on success; failures also print to
/// stderr, which the parent surfaces in its exception).
[[nodiscard]] int run_node(const DeploymentConfig& config,
                           const NodeOptions& options);

namespace detail {

/// Parent orchestrator behind train() for transport=tcp. Throws
/// std::runtime_error when a child fails, hangs past the deadline, or the
/// run aborted (the abort reason travels back in the result blob).
[[nodiscard]] TrainResult train_multiprocess(const DeploymentConfig& config);

}  // namespace detail

}  // namespace garfield::core
