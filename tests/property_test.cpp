// Cross-module property tests:
//  - GAR algebraic properties (translation/scaling equivariance) swept over
//    rules and shapes;
//  - cost-model monotonicity swept over deployments, devices and sizes;
//  - end-to-end training determinism;
//  - cluster behaviour under randomized concurrent load with crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "core/trainer.h"
#include "gars/gar.h"
#include "net/cluster.h"
#include "sim/deployment_sim.h"
#include "tensor/rng.h"

namespace gg = garfield::gars;
namespace gt = garfield::tensor;
namespace gs = garfield::sim;
namespace gc = garfield::core;
namespace gn = garfield::net;

using gt::FlatVector;

namespace {

std::vector<FlatVector> random_cloud(std::size_t n, std::size_t d,
                                     std::uint64_t seed) {
  gt::Rng rng(seed);
  std::vector<FlatVector> out(n, FlatVector(d));
  for (auto& v : out) {
    for (float& x : v) x = rng.normal();
  }
  return out;
}

}  // namespace

// ------------------------------------------- GAR algebraic properties

struct GarShape {
  std::string gar;
  std::size_t n;
  std::size_t f;
};

class GarAlgebra : public ::testing::TestWithParam<GarShape> {};

/// Positive scaling equivariance: GAR(a*x) == a*GAR(x). Holds for every
/// rule in the library (they are all built from distances, order statistics
/// and averages, which scale homogeneously).
TEST_P(GarAlgebra, ScalingEquivariant) {
  const GarShape& p = GetParam();
  auto in = random_cloud(p.n, 24, 11);
  gg::GarPtr gar = gg::make_gar(p.gar, p.n, p.f);
  const FlatVector base = gar->aggregate(in);
  const float a = 2.5F;
  for (auto& v : in) gt::scale(v, a);
  const FlatVector scaled = gar->aggregate(in);
  for (std::size_t j = 0; j < base.size(); ++j) {
    EXPECT_NEAR(scaled[j], a * base[j], 3e-3F * std::abs(base[j]) + 2e-3F)
        << p.gar;
  }
}

/// Translation equivariance: GAR(x + c) == GAR(x) + c. Holds for every
/// rule except CGE, whose norm filter is origin-dependent (tested
/// separately as its documented limitation).
TEST_P(GarAlgebra, TranslationEquivariant) {
  const GarShape& p = GetParam();
  if (p.gar == "cge") GTEST_SKIP() << "cge is origin-dependent by design";
  auto in = random_cloud(p.n, 24, 12);
  gg::GarPtr gar = gg::make_gar(p.gar, p.n, p.f);
  const FlatVector base = gar->aggregate(in);
  const float c = 3.0F;
  for (auto& v : in) {
    for (float& x : v) x += c;
  }
  const FlatVector shifted = gar->aggregate(in);
  for (std::size_t j = 0; j < base.size(); ++j) {
    EXPECT_NEAR(shifted[j], base[j] + c, 5e-3F) << p.gar;
  }
}

/// Output lies in the per-coordinate range of the inputs (a weak but
/// universal sanity envelope: no rule extrapolates).
TEST_P(GarAlgebra, OutputInsideCoordinateEnvelope) {
  const GarShape& p = GetParam();
  auto in = random_cloud(p.n, 16, 13);
  gg::GarPtr gar = gg::make_gar(p.gar, p.n, p.f);
  const FlatVector out = gar->aggregate(in);
  for (std::size_t j = 0; j < out.size(); ++j) {
    float lo = in[0][j], hi = in[0][j];
    for (const auto& v : in) {
      lo = std::min(lo, v[j]);
      hi = std::max(hi, v[j]);
    }
    EXPECT_GE(out[j], lo - 1e-4F) << p.gar;
    EXPECT_LE(out[j], hi + 1e-4F) << p.gar;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GarAlgebra,
    ::testing::Values(GarShape{"average", 7, 0}, GarShape{"median", 7, 2},
                      GarShape{"median", 8, 2},  // even input count
                      GarShape{"trimmed_mean", 9, 3},
                      GarShape{"krum", 9, 2}, GarShape{"multi_krum", 9, 2},
                      GarShape{"mda", 7, 2}, GarShape{"bulyan", 11, 2},
                      GarShape{"geometric_median", 7, 2},
                      GarShape{"centered_clip", 7, 2}, GarShape{"cge", 7, 2}),
    [](const ::testing::TestParamInfo<GarShape>& info) {
      return info.param.gar + "_n" + std::to_string(info.param.n) + "_f" +
             std::to_string(info.param.f);
    });

// ------------------------------------------- cost-model monotonicity

class SimMonotonic
    : public ::testing::TestWithParam<gs::SimDeployment> {};

TEST_P(SimMonotonic, IterationTimeGrowsWithDimension) {
  gs::SimSetup s;
  s.deployment = GetParam();
  s.nw = 12;
  s.fw = 2;
  s.nps = 4;
  s.fps = 1;
  s.gradient_gar = "multi_krum";
  double prev = 0.0;
  for (std::size_t d : {100'000UL, 1'000'000UL, 10'000'000UL}) {
    s.d = d;
    const double t = gs::simulate_iteration(s).total();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(SimMonotonic, IterationTimeGrowsWithWorkers) {
  gs::SimSetup s;
  s.deployment = GetParam();
  s.d = 10'000'000;
  s.fw = 1;
  s.nps = 4;
  s.fps = 1;
  s.gradient_gar = "median";
  double prev = 0.0;
  for (std::size_t nw : {4UL, 8UL, 16UL}) {
    s.nw = nw;
    const double t = gs::simulate_iteration(s).total();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(SimMonotonic, FaultTolerantSlowdownAtLeastOne) {
  if (GetParam() == gs::SimDeployment::kVanilla) GTEST_SKIP();
  for (const char* model : {"CifarNet", "ResNet-50", "VGG"}) {
    for (bool gpu : {false, true}) {
      gs::SimSetup s;
      s.deployment = GetParam();
      s.d = gs::model_spec(model).parameters;
      s.nw = 12;
      s.fw = 2;
      s.nps = 4;
      s.fps = 1;
      s.gradient_gar = "multi_krum";
      s.device = gpu ? gs::gpu_profile() : gs::cpu_profile();
      s.link = gpu ? gs::gpu_link() : gs::cpu_link();
      EXPECT_GT(gs::slowdown_vs_vanilla(s), 1.0)
          << model << (gpu ? " gpu" : " cpu");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDeployments, SimMonotonic,
    ::testing::Values(gs::SimDeployment::kVanilla,
                      gs::SimDeployment::kCrashTolerant,
                      gs::SimDeployment::kSsmw, gs::SimDeployment::kMsmw,
                      gs::SimDeployment::kDecentralized),
    [](const ::testing::TestParamInfo<gs::SimDeployment>& info) {
      return gs::to_string(info.param);
    });

// ------------------------------------------- end-to-end determinism

TEST(Determinism, VanillaRunsAreBitReproducible) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kVanilla;
  cfg.model = "tiny_mlp";
  cfg.nw = 4;
  cfg.train_size = 512;
  cfg.test_size = 128;
  cfg.batch_size = 16;
  cfg.iterations = 60;
  cfg.eval_every = 20;
  cfg.seed = 77;
  const gc::TrainResult a = gc::train(cfg);
  const gc::TrainResult b = gc::train(cfg);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
}

TEST(Determinism, SsmwRunsAreBitReproducible) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.model = "tiny_mlp";
  cfg.nw = 5;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.train_size = 512;
  cfg.test_size = 128;
  cfg.batch_size = 16;
  cfg.iterations = 60;
  cfg.eval_every = 60;
  cfg.seed = 78;
  const gc::TrainResult a = gc::train(cfg);
  const gc::TrainResult b = gc::train(cfg);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_loss, b.final_loss);
}

TEST(Determinism, DifferentSeedsDiverge) {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kVanilla;
  cfg.model = "tiny_mlp";
  cfg.nw = 4;
  cfg.train_size = 512;
  cfg.test_size = 128;
  cfg.iterations = 40;
  cfg.eval_every = 0;
  cfg.seed = 1;
  const double a = gc::train(cfg).final_loss;
  cfg.seed = 2;
  const double b = gc::train(cfg).final_loss;
  EXPECT_NE(a, b);
}

// ------------------------------------------- cluster stress

TEST(ClusterStress, RandomizedLoadWithCrashes) {
  gn::Cluster::Options opts;
  opts.nodes = 12;
  opts.pool_threads = 16;
  gn::Cluster cluster(opts);
  for (gn::NodeId i = 0; i < 12; ++i) {
    cluster.register_handler(i, "echo", [i](const gn::Request& req) {
      gn::Payload p(8, float(i));
      p[0] = float(req.iteration);
      return gn::HandlerResult::reply(std::move(p));
    });
  }
  cluster.crash(3);
  cluster.crash(7);
  std::vector<gn::NodeId> peers;
  for (gn::NodeId i = 0; i < 12; ++i) peers.push_back(i);

  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([&cluster, &peers, &total, t] {
      gt::Rng rng{std::uint64_t(t)};
      for (int k = 0; k < 30; ++k) {
        const std::size_t q = 1 + rng.index(9);  // 1..9 <= 10 live nodes
        auto replies = cluster.collect(gn::NodeId(t), peers, "echo",
                                       std::uint64_t(k), nullptr, q);
        EXPECT_GE(replies.size(), q);  // 10 live nodes can always fill q
        for (const auto& r : replies) {
          EXPECT_NE(r.from, 3u);
          EXPECT_NE(r.from, 7u);
          EXPECT_EQ((*r.payload)[0], float(k));
        }
        total.fetch_add(int(replies.size()));
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_GT(total.load(), 0);
  const gn::NetStats stats = cluster.stats();
  EXPECT_EQ(stats.requests_sent, 6u * 30u * 12u);
}
