// Unit tests for garfield::tensor — Tensor, vecops, Rng, parallel_for.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/vecops.h"

namespace gt = garfield::tensor;

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(gt::shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(gt::shape_numel({7}), 7u);
  EXPECT_EQ(gt::shape_numel({}), 0u);
  EXPECT_EQ(gt::shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, ZeroConstruction) {
  gt::Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, FillAndAt) {
  gt::Tensor t = gt::Tensor::full({2, 2}, 3.5F);
  EXPECT_EQ(t.at(1, 1), 3.5F);
  t.at(0, 1) = -1.0F;
  EXPECT_EQ(t[1], -1.0F);
}

TEST(Tensor, ValueConstructorChecksSize) {
  EXPECT_THROW(gt::Tensor({2, 2}, std::vector<float>{1.0F}),
               std::invalid_argument);
  gt::Tensor ok({2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(ok.at(1, 0), 3.0F);
}

TEST(Tensor, ReshapePreservesData) {
  gt::Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  gt::Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0F);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ArithmeticOps) {
  gt::Tensor a({3}, std::vector<float>{1, 2, 3});
  gt::Tensor b({3}, std::vector<float>{4, 5, 6});
  a += b;
  EXPECT_EQ(a[2], 9.0F);
  a -= b;
  EXPECT_EQ(a[0], 1.0F);
  a *= 2.0F;
  EXPECT_EQ(a[1], 4.0F);
}

TEST(Tensor, Reductions) {
  gt::Tensor t({4}, std::vector<float>{1, -2, 5, 0});
  EXPECT_DOUBLE_EQ(t.sum(), 4.0);
  EXPECT_DOUBLE_EQ(t.mean(), 1.0);
  EXPECT_EQ(t.max(), 5.0F);
  EXPECT_EQ(t.argmax(), 2u);
}

TEST(Tensor, RandnIsDeterministicInSeed) {
  gt::Rng rng1(7), rng2(7);
  gt::Tensor a = gt::Tensor::randn({16}, rng1);
  gt::Tensor b = gt::Tensor::randn({16}, rng2);
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Matmul, MatchesHandComputation) {
  gt::Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  gt::Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  gt::Tensor c = gt::matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0F);
  EXPECT_EQ(c.at(0, 1), 64.0F);
  EXPECT_EQ(c.at(1, 0), 139.0F);
  EXPECT_EQ(c.at(1, 1), 154.0F);
}

TEST(Matmul, TransposedVariantsAgree) {
  gt::Rng rng(3);
  gt::Tensor a = gt::Tensor::randn({4, 5}, rng);
  gt::Tensor b = gt::Tensor::randn({5, 6}, rng);
  gt::Tensor direct = gt::matmul(a, b);
  gt::Tensor via_nt = gt::matmul_nt(a, gt::transpose(b));
  gt::Tensor via_tn = gt::matmul_tn(gt::transpose(a), b);
  for (std::size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct[i], via_nt[i], 1e-4F);
    EXPECT_NEAR(direct[i], via_tn[i], 1e-4F);
  }
}

TEST(VecOps, AxpyScaleDot) {
  gt::FlatVector x{1, 2, 3}, y{10, 20, 30};
  gt::axpy(2.0F, x, y);
  EXPECT_EQ(y[2], 36.0F);
  gt::scale(y, 0.5F);
  EXPECT_EQ(y[0], 6.0F);
  EXPECT_DOUBLE_EQ(gt::dot(x, x), 14.0);
}

TEST(VecOps, DistanceAndNorm) {
  gt::FlatVector a{0, 3}, b{4, 0};
  EXPECT_DOUBLE_EQ(gt::squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(gt::norm(a), 3.0);
}

TEST(VecOps, MeanOfVectors) {
  std::vector<gt::FlatVector> vs = {{1, 2}, {3, 4}, {5, 6}};
  gt::FlatVector m = gt::mean(vs);
  EXPECT_FLOAT_EQ(m[0], 3.0F);
  EXPECT_FLOAT_EQ(m[1], 4.0F);
}

TEST(VecOps, Cosine) {
  gt::FlatVector a{1, 0}, b{0, 1}, c{2, 0};
  EXPECT_NEAR(gt::cosine(a, b), 0.0, 1e-12);
  EXPECT_NEAR(gt::cosine(a, c), 1.0, 1e-12);
  gt::FlatVector zero{0, 0};
  EXPECT_EQ(gt::cosine(a, zero), 0.0);
}

TEST(VecOps, AllFinite) {
  gt::FlatVector ok{1.0F, -2.0F};
  EXPECT_TRUE(gt::all_finite(ok));
  gt::FlatVector bad{1.0F, std::nanf("")};
  EXPECT_FALSE(gt::all_finite(bad));
  gt::FlatVector inf{1.0F, INFINITY};
  EXPECT_FALSE(gt::all_finite(inf));
}

TEST(VecOps, SubtractAndAdd) {
  gt::FlatVector a{5, 7}, b{2, 3}, out(2);
  gt::subtract(a, b, out);
  EXPECT_EQ(out[0], 3.0F);
  gt::add(out, b, out);
  EXPECT_EQ(out[1], 7.0F);
}

TEST(Rng, ForkProducesDecorrelatedStreams) {
  gt::Rng root(1);
  gt::Rng a = root.fork(1);
  gt::Rng b = root.fork(2);
  // Not a statistical test; just check the streams differ.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    if (a.normal() != b.normal()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ForkIsDeterministic) {
  gt::Rng r1(9), r2(9);
  gt::Rng a = r1.fork(5);
  gt::Rng b = r2.fork(5);
  EXPECT_EQ(a.normal(), b.normal());
}

TEST(Rng, ForkDependsOnParentSeed) {
  // Regression: fork() once mixed only a constant, so every experiment
  // seed produced identical datasets and models.
  gt::Rng r1(1), r2(2);
  gt::Rng a = r1.fork(7);
  gt::Rng b = r2.fork(7);
  EXPECT_NE(a.normal(), b.normal());
}

TEST(Rng, IndexInRange) {
  gt::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.index(10), 10u);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 200000;  // above the inline threshold
  std::vector<int> hits(n, 0);
  gt::parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), int(n));
}

TEST(ParallelFor, SmallRangeRunsInline) {
  std::vector<int> hits(10, 0);
  gt::parallel_for(10, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroIsNoop) {
  gt::parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
}
