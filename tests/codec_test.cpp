// Tests for the gradient-compression wire codecs (net/codec.h): spec
// parsing, round-trips, the int8 saturation rails, top-k selection and
// index canonicalization, error-feedback residuals, degenerate tensors
// (empty, denormal, tiny) and the Byzantine-garbage ingress gate.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "net/codec.h"
#include "tensor/rng.h"

namespace gn = garfield::net;
namespace gt = garfield::tensor;

namespace {

gn::Codec make(const std::string& spec) {
  return gn::Codec(gn::CodecSpec::parse(spec));
}

gn::Payload random_payload(std::size_t d, std::uint64_t seed) {
  gt::Rng rng(seed);
  gn::Payload out(d);
  for (float& x : out) x = rng.normal(0.0F, 1.0F);
  return out;
}

double rms(const gn::Payload& a, const gn::Payload& b) {
  EXPECT_EQ(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += double(a[i] - b[i]) * double(a[i] - b[i]);
  }
  return a.empty() ? 0.0 : std::sqrt(acc / double(a.size()));
}

}  // namespace

// ------------------------------------------------------------------ parse

TEST(CodecSpec, ParsesTheGrammar) {
  EXPECT_EQ(gn::CodecSpec::parse("none").kind, gn::CodecKind::kNone);
  EXPECT_TRUE(gn::CodecSpec::parse("none").identity());
  EXPECT_EQ(gn::CodecSpec::parse("int8").kind, gn::CodecKind::kInt8);
  const gn::CodecSpec topk = gn::CodecSpec::parse("topk:k=0.05");
  EXPECT_EQ(topk.kind, gn::CodecKind::kTopK);
  EXPECT_DOUBLE_EQ(topk.k, 0.05);
  // Default k when unspecified.
  EXPECT_DOUBLE_EQ(gn::CodecSpec::parse("topk").k, 0.01);
}

TEST(CodecSpec, RejectsNonsense) {
  EXPECT_THROW((void)gn::CodecSpec::parse("gzip"), std::invalid_argument);
  EXPECT_THROW((void)gn::CodecSpec::parse("topk:k=0"), std::invalid_argument);
  EXPECT_THROW((void)gn::CodecSpec::parse("topk:k=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::CodecSpec::parse("topk:k=-0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::CodecSpec::parse("int8:k=0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)gn::CodecSpec::parse("topk:frac=0.1"),
               std::invalid_argument);
}

TEST(CodecSpec, TopkCountClampsToAtLeastOne) {
  const gn::CodecSpec spec = gn::CodecSpec::parse("topk:k=0.01");
  EXPECT_EQ(spec.topk_count(0), 0U);
  EXPECT_EQ(spec.topk_count(10), 1U);  // 0.1 rounds to 0, clamped up
  EXPECT_EQ(spec.topk_count(1000), 10U);
  EXPECT_EQ(gn::CodecSpec::parse("topk:k=1").topk_count(7), 7U);
}

TEST(CodecSpec, WireRatioMatchesLayouts) {
  EXPECT_DOUBLE_EQ(gn::CodecSpec::parse("none").wire_ratio(1000), 1.0);
  // topk:k=0.01 at d=1000: (3 + 2*10) / 1000.
  EXPECT_DOUBLE_EQ(gn::CodecSpec::parse("topk:k=0.01").wire_ratio(1000),
                   23.0 / 1000.0);
  // int8 at d=1000: (3 + 250) / 1000 — just over a quarter.
  EXPECT_DOUBLE_EQ(gn::CodecSpec::parse("int8").wire_ratio(1000),
                   253.0 / 1000.0);
}

// ------------------------------------------------------------ round trips

TEST(Codec, IdentityIsExact) {
  const gn::Codec codec = make("none");
  const gn::Payload dense = random_payload(97, 1);
  const gn::Payload wire = codec.encode_gradient(dense);
  EXPECT_EQ(wire, dense);
  const auto back = codec.decode(wire, dense.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, dense);
}

TEST(Codec, Int8RoundTripIsClose) {
  const gn::Codec codec = make("int8");
  const gn::Payload dense = random_payload(1001, 2);  // odd d: partial slot
  const gn::Payload wire = codec.encode_gradient(dense);
  EXPECT_EQ(wire.size(), 3U + (dense.size() + 3) / 4);
  EXPECT_TRUE(gn::Codec::looks_encoded(wire));
  const auto back = codec.decode(wire, dense.size());
  ASSERT_TRUE(back.has_value());
  // Quantization error is bounded by scale/2 = max|x| / 254 per coordinate.
  float max_abs = 0.0F;
  for (const float x : dense) max_abs = std::max(max_abs, std::abs(x));
  const float bound = max_abs / 254.0F + 1e-6F;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_NEAR((*back)[i], dense[i], bound) << "coordinate " << i;
  }
}

TEST(Codec, Int8SaturatesAtTheRails) {
  const gn::Codec codec = make("int8");
  // One huge outlier sets the scale; everything else quantizes small.
  gn::Payload dense(8, 0.001F);
  dense[3] = 127000.0F;
  dense[5] = -127000.0F;
  const auto back = codec.decode(codec.encode_gradient(dense), dense.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_FLOAT_EQ((*back)[3], 127000.0F);   // exactly ±127 * scale
  EXPECT_FLOAT_EQ((*back)[5], -127000.0F);
  EXPECT_FLOAT_EQ((*back)[0], 0.0F);        // below half a step: rounds away
}

TEST(Codec, TopkKeepsTheHeaviestCoordinates) {
  const gn::Codec codec = make("topk:k=0.25");  // d=8 -> keep 2
  gn::Payload dense{0.1F, -5.0F, 0.2F, 0.0F, 3.0F, -0.3F, 0.05F, 0.2F};
  const gn::Payload wire = codec.encode_gradient(dense);
  ASSERT_EQ(wire.size(), 3U + 2U * 2U);
  EXPECT_TRUE(gn::Codec::looks_encoded(wire));
  // Canonical form: strictly ascending indices, then their values.
  EXPECT_FLOAT_EQ(wire[3], 1.0F);
  EXPECT_FLOAT_EQ(wire[4], 4.0F);
  EXPECT_FLOAT_EQ(wire[5], -5.0F);
  EXPECT_FLOAT_EQ(wire[6], 3.0F);
  const auto back = codec.decode(wire, dense.size());
  ASSERT_TRUE(back.has_value());
  const gn::Payload expect{0.0F, -5.0F, 0.0F, 0.0F, 3.0F, 0.0F, 0.0F, 0.0F};
  EXPECT_EQ(*back, expect);
}

TEST(Codec, TopkTieBreaksOnLowerIndex) {
  const gn::Codec codec = make("topk:k=0.5");  // d=4 -> keep 2
  const gn::Payload dense{1.0F, -1.0F, 1.0F, 1.0F};  // all tied in |.|
  const gn::Payload wire = codec.encode_gradient(dense);
  ASSERT_EQ(wire.size(), 3U + 2U * 2U);
  EXPECT_FLOAT_EQ(wire[3], 0.0F);
  EXPECT_FLOAT_EQ(wire[4], 1.0F);
}

TEST(Codec, EmptyTensorRoundTrips) {
  for (const char* spec : {"none", "int8", "topk:k=0.5"}) {
    const gn::Codec codec = make(spec);
    const gn::Payload dense;
    const gn::Payload wire = codec.encode_gradient(dense);
    const auto back = codec.decode(wire, 0);
    ASSERT_TRUE(back.has_value()) << spec;
    EXPECT_TRUE(back->empty()) << spec;
  }
}

TEST(Codec, DenormalAndZeroTensorsSurvive) {
  const float denorm = std::numeric_limits<float>::denorm_min();
  for (const char* spec : {"int8", "topk:k=0.5"}) {
    const gn::Codec codec = make(spec);
    gn::Payload dense(6, 0.0F);
    dense[2] = denorm;
    dense[4] = -denorm;
    const auto back =
        codec.decode(codec.encode_gradient(dense), dense.size());
    ASSERT_TRUE(back.has_value()) << spec;
    for (const float x : *back) EXPECT_TRUE(std::isfinite(x)) << spec;
    // All-zero input must encode/decode to all zeros (scale = 0 path).
    const gn::Payload zeros(6, 0.0F);
    const auto zback =
        codec.decode(codec.encode_gradient(zeros), zeros.size());
    ASSERT_TRUE(zback.has_value()) << spec;
    EXPECT_EQ(*zback, zeros) << spec;
  }
}

TEST(Codec, StateEncodingDegradesTopkToInt8) {
  const gn::Codec topk = make("topk:k=0.01");
  const gn::Payload model = random_payload(512, 3);
  const gn::Payload wire = topk.encode_state(model);
  // int8 layout, not topk: a model missing 99% of coordinates is no model.
  EXPECT_EQ(wire.size(), 3U + (model.size() + 3) / 4);
  const auto back = topk.decode(wire, model.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_LT(rms(*back, model), 0.02);
  // And the identity codec's state path stays exact.
  EXPECT_EQ(make("none").encode_state(model), model);
}

// --------------------------------------------------------- error feedback

TEST(Codec, ErrorFeedbackCarriesDroppedMass) {
  const gn::Codec codec = make("topk:k=0.25");  // d=4 -> keep 1
  gn::Payload residual;
  const gn::Payload g{1.0F, 0.6F, 0.5F, 0.4F};
  // Round 1: keeps index 0, drops the rest into the residual.
  const gn::Payload w1 = codec.encode_gradient(g, &residual);
  ASSERT_EQ(residual.size(), g.size());
  EXPECT_FLOAT_EQ(residual[0], 0.0F);
  EXPECT_FLOAT_EQ(residual[1], 0.6F);
  // Round 2 with a zero gradient: the carried residual alone must win the
  // selection — compressed communication converges to the true sum.
  const gn::Payload zero(4, 0.0F);
  const gn::Payload w2 = codec.encode_gradient(zero, &residual);
  const auto back = codec.decode(w2, 4);
  ASSERT_TRUE(back.has_value());
  EXPECT_FLOAT_EQ((*back)[1], 0.6F);  // last round's dropped coordinate
  EXPECT_FLOAT_EQ(residual[1], 0.0F);
  EXPECT_FLOAT_EQ(residual[2], 0.5F);  // still waiting its turn
}

TEST(Codec, Int8ErrorFeedbackShrinksQuantizationError) {
  const gn::Codec codec = make("int8");
  const gn::Payload g = random_payload(256, 4);
  // Sum of decoded transmissions with feedback approaches n*g better than
  // n independent quantizations: the residual re-injects rounding error.
  gn::Payload residual;
  gn::Payload sum_fb(g.size(), 0.0F);
  gn::Payload sum_plain(g.size(), 0.0F);
  constexpr int kRounds = 16;
  for (int r = 0; r < kRounds; ++r) {
    const auto fb = codec.decode(codec.encode_gradient(g, &residual), 256);
    const auto plain = codec.decode(codec.encode_gradient(g), 256);
    ASSERT_TRUE(fb && plain);
    for (std::size_t i = 0; i < g.size(); ++i) {
      sum_fb[i] += (*fb)[i];
      sum_plain[i] += (*plain)[i];
    }
  }
  gn::Payload target = g;
  for (float& x : target) x *= float(kRounds);
  EXPECT_LE(rms(sum_fb, target), rms(sum_plain, target));
  EXPECT_LT(rms(sum_fb, target) / double(kRounds), 1e-3);
}

// ------------------------------------------------------------ ingress gate

TEST(Codec, DecodeRejectsStructuralGarbage) {
  const gn::Codec codec = make("topk:k=0.5");
  const gn::Payload dense = random_payload(16, 5);
  const gn::Payload wire = codec.encode_gradient(dense);

  // Wrong dimension claim.
  EXPECT_FALSE(codec.decode(wire, 17).has_value());
  // Truncated frame.
  gn::Payload cut(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(codec.decode(cut, 16).has_value());
  // Out-of-range index.
  gn::Payload bad_idx = wire;
  bad_idx[3] = 99.0F;
  EXPECT_FALSE(codec.decode(bad_idx, 16).has_value());
  // Non-integral index.
  gn::Payload frac_idx = wire;
  frac_idx[3] = 0.5F;
  EXPECT_FALSE(codec.decode(frac_idx, 16).has_value());
  // Duplicate / non-ascending indices are garbage, not an alt encoding.
  gn::Payload dup = wire;
  dup[4] = dup[3];
  EXPECT_FALSE(codec.decode(dup, 16).has_value());
  // k > d.
  gn::Payload too_many = wire;
  too_many[2] = 17.0F;
  EXPECT_FALSE(codec.decode(too_many, 16).has_value());

  const gn::Codec int8 = make("int8");
  const gn::Payload iwire = int8.encode_gradient(dense);
  // Non-finite scale.
  gn::Payload nan_scale = iwire;
  nan_scale[2] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(int8.decode(nan_scale, 16).has_value());
  gn::Payload neg_scale = iwire;
  neg_scale[2] = -1.0F;
  EXPECT_FALSE(int8.decode(neg_scale, 16).has_value());
  // Wrong slot count for the claimed dimension.
  gn::Payload short_frame(iwire.begin(), iwire.end() - 1);
  EXPECT_FALSE(int8.decode(short_frame, 16).has_value());

  // A plain dense payload of the wrong size is garbage too.
  EXPECT_FALSE(codec.decode(random_payload(8, 6), 16).has_value());
  // ... but of the right size passes through unchanged.
  const gn::Payload plain = random_payload(16, 7);
  const auto through = codec.decode(plain, 16);
  ASSERT_TRUE(through.has_value());
  EXPECT_EQ(*through, plain);
}

TEST(Codec, DecodeDispatchesOnMagicNotOnSpec) {
  // A topk-configured receiver still decodes an int8 state frame (model
  // snapshots degrade to int8 regardless of the gradient codec).
  const gn::Codec topk = make("topk:k=0.01");
  const gn::Payload model = random_payload(128, 8);
  const gn::Payload state = topk.encode_state(model);
  const auto back = topk.decode(state, model.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_LT(rms(*back, model), 0.02);
}

TEST(Codec, MagicWordsAreQuietNans) {
  // The frame marker must be a bit pattern the all_finite ingress gate
  // would reject in a plain gradient — i.e. NaN space.
  const gn::Codec codec = make("int8");
  const gn::Payload wire = codec.encode_gradient(random_payload(8, 9));
  EXPECT_TRUE(std::isnan(wire[0]));
  EXPECT_TRUE(gn::Codec::looks_encoded(wire));
  EXPECT_FALSE(gn::Codec::looks_encoded(random_payload(8, 10)));
  EXPECT_FALSE(gn::Codec::looks_encoded({}));
}
