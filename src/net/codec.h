// Gradient-compression wire codecs (the `codec=` config key).
//
// The paper's deployments are communication-bound (Fig 8/9: decentralized
// traffic grows O(n^2); the TCP backend runs an order of magnitude slower
// than in-process at identical floats_transferred). A wire codec shrinks
// what crosses the Transport seam without touching the learning code: the
// sender encodes a dense FlatVector into a (much) shorter FlatVector, the
// receiver decodes it back to full dimension, and everything in between —
// wire framing, byte accounting, fault injection — rides the existing
// PayloadPtr machinery unchanged.
//
// Spec grammar (util/spec.h):
//
//   codec := "none"                  identity (the default)
//          | "int8"                  per-tensor linear quantization to
//                                    signed bytes, 4 packed per wire float
//                                    (~4x fewer wire floats, asymptotically)
//          | "topk:k=0.01"           top-k sparsification: keep the k*d
//                                    largest-|value| coordinates as
//                                    (index, value) pairs (k in (0, 1])
//
// Two payload classes, because one lossy knob does not fit both:
//
//  - *gradient* payloads (worker gradient replies, decentralized gradient
//    gossip) tolerate aggressive sparsification — encode_gradient applies
//    the configured codec, with an optional caller-owned error-feedback
//    residual (the classic memory trick: what topk dropped this round is
//    added back next round, so the compression error stays bounded instead
//    of accumulating);
//  - *state* payloads (model snapshots riding get_gradients requests, the
//    publish_model ring, get_models pulls) would diverge under topk — a
//    model missing 99% of its coordinates is not a model — so encode_state
//    degrades any lossy codec to int8 (documented determinism caveat: the
//    quantization round-trip perturbs trajectories vs codec=none, but
//    identically on every backend and every run).
//
// Wire layout (all plain floats, so the payload is an ordinary FlatVector
// and the wire layer's memcpy round-trip preserves it bit-exactly; the
// magic words are NaN-space bit patterns no real gradient produces):
//
//   topk:  [magic, d, k] + k index floats + k value floats
//   int8:  [magic, d, scale] + ceil(d / 4) floats of 4 packed int8 each
//
// decode() is the ingress gate: a Byzantine peer can ship arbitrary bytes,
// so every structural violation (wrong magic, dimension mismatch,
// out-of-range index, non-finite scale) returns nullopt — the caller
// treats the payload exactly like a non-finite plain gradient (rejected,
// counted, never thrown through).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/transport.h"

namespace garfield::net {

enum class CodecKind { kNone, kTopK, kInt8 };

/// Parsed `codec=` spec. parse() throws std::invalid_argument on unknown
/// names, out-of-range k, or stray options — a typo'd codec must fail at
/// DeploymentConfig::validate(), never run silently uncompressed.
struct CodecSpec {
  CodecKind kind = CodecKind::kNone;
  double k = 0.01;  ///< topk fraction of coordinates kept, in (0, 1]

  [[nodiscard]] static CodecSpec parse(const std::string& spec);

  [[nodiscard]] bool identity() const { return kind == CodecKind::kNone; }

  /// Coordinates topk keeps for dimension d (>= 1 for non-empty tensors).
  [[nodiscard]] std::size_t topk_count(std::size_t d) const;

  /// Wire floats per model float for a dimension-d *gradient* payload —
  /// what the analytic plane (SimSetup::codec_ratio) scales communication
  /// volumes by. 1.0 for none; never below it for degenerate tiny d.
  [[nodiscard]] double wire_ratio(std::size_t d) const;
};

/// Stateless encode/decode pair for one parsed spec. Thread-safe (no
/// mutable state); the error-feedback residual is caller-owned so each
/// sender keeps its own.
class Codec {
 public:
  Codec() = default;
  explicit Codec(CodecSpec spec) : spec_(spec) {}

  [[nodiscard]] const CodecSpec& spec() const { return spec_; }
  [[nodiscard]] bool identity() const { return spec_.identity(); }

  /// Encode a gradient-class payload with the configured codec. When
  /// `residual` is non-null it is the caller's error-feedback memory:
  /// sized to the tensor on first use, added to `dense` before
  /// compression, and rewritten to what this round's encoding dropped.
  /// Identity codec returns a copy of `dense` untouched.
  [[nodiscard]] Payload encode_gradient(const Payload& dense,
                                        Payload* residual = nullptr) const;

  /// Encode a state-class payload (model snapshot): lossy codecs degrade
  /// to int8 (see header block), identity stays identity.
  [[nodiscard]] Payload encode_state(const Payload& dense) const;

  /// Decode an encoded payload back to `dimension` dense floats. Returns
  /// nullopt on any structural violation — the Byzantine-garbage ingress
  /// gate. Identity codec requires size == dimension and returns a copy.
  [[nodiscard]] std::optional<Payload> decode(const Payload& encoded,
                                              std::size_t dimension) const;

  /// True when `payload` opens with one of the codec magic words — how a
  /// receiver distinguishes an encoded frame from a plain dense one.
  [[nodiscard]] static bool looks_encoded(const Payload& payload);

 private:
  CodecSpec spec_;
};

}  // namespace garfield::net
