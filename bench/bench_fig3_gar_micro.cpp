// Figure 3 — GAR micro-benchmark (measured, not simulated).
//
// Reproduces both panels on this machine's CPU implementation of the GARs:
//   Fig 3a: aggregation time vs n (number of inputs), fixed d.
//   Fig 3b: aggregation time vs d (input dimension), fixed n = 17.
// As in the paper, f = floor((n-3)/4) for all Byzantine-resilient GARs, so
// the smallest n is 7. The paper's d = 1e7 runs on two 1080 Ti GPUs; we
// sweep to d = 1e7 on the CPU (expect the same ordering and growth shapes,
// scaled by hardware: Average ~ Median < Multi-Krum ~ MDA < Bulyan, all
// linear in d, Krum-family quadratic in n).
#include <benchmark/benchmark.h>

#include "bench_support.h"
#include "gars/gar.h"
#include "tensor/rng.h"

namespace {

using garfield::tensor::FlatVector;

std::vector<FlatVector> make_inputs(std::size_t n, std::size_t d) {
  garfield::tensor::Rng rng(1234);
  std::vector<FlatVector> inputs(n, FlatVector(d));
  for (auto& v : inputs) {
    for (float& x : v) x = rng.normal();
  }
  return inputs;
}

void run_gar(benchmark::State& state, const std::string& name) {
  const std::size_t n = std::size_t(state.range(0));
  const std::size_t d = std::size_t(state.range(1));
  const std::size_t f = (n - 3) / 4;  // the paper's setting
  const auto inputs = make_inputs(n, d);
  const auto gar = garfield::gars::make_gar(
      name, n, name == "average" ? 0 : f);
  for (auto _ : state) {
    FlatVector out = gar->aggregate(inputs);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["n"] = double(n);
  state.counters["d"] = double(d);
  state.counters["f"] = double(f);
}

void register_all() {
  const std::vector<std::string> gars = {"average", "median", "multi_krum",
                                         "mda", "bulyan"};
  // Smoke mode (ctest bench-smoke): one tiny point per GAR and panel so the
  // registration + aggregation path runs in milliseconds.
  if (garfield::bench::smoke_mode()) {
    for (const auto& g : gars) {
      for (const char* panel : {"fig3a/", "fig3b/"}) {
        benchmark::RegisterBenchmark(
            (panel + g).c_str(),
            [g](benchmark::State& s) { run_gar(s, g); })
            ->Args({7, 1'000})
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
    return;
  }
  // Fig 3a: n sweep at fixed d (paper: d = 1e7; scaled to 1e6 to keep the
  // CPU sweep minutes, the n-shape is unchanged).
  for (const auto& g : gars) {
    for (std::size_t n = 7; n <= 23; n += 2) {
      benchmark::RegisterBenchmark(
          ("fig3a/" + g).c_str(),
          [g](benchmark::State& s) { run_gar(s, g); })
          ->Args({long(n), 1'000'000})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
  }
  // Fig 3b: d sweep at fixed n = 17.
  for (const auto& g : gars) {
    for (long d : {10'000L, 100'000L, 1'000'000L, 10'000'000L}) {
      benchmark::RegisterBenchmark(
          ("fig3b/" + g).c_str(),
          [g](benchmark::State& s) { run_gar(s, g); })
          ->Args({17, d})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(d >= 10'000'000 ? 1 : 2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
