// garfield_node: one rank of a transport=tcp deployment.
//
// Spawned by the parent orchestrator (core/node_runner.h), never by hand —
// the listening socket named by --listen-fd must already be bound and
// listening when this process starts, which only the pre-fork parent can
// guarantee. Usage:
//
//   garfield_node --rank R --nodes N --listen-fd FD
//                 --ports p0,p1,...,pN-1 --config FILE [--result FILE]
//
// Loads the deployment config, builds this rank's runtime over a
// TcpTransport and runs it to completion; rank 0 writes the result blob
// the parent returns from train().
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/node_runner.h"

namespace {

std::vector<std::uint16_t> parse_ports(const std::string& list) {
  std::vector<std::uint16_t> ports;
  std::size_t at = 0;
  while (at <= list.size()) {
    const std::size_t comma = list.find(',', at);
    const std::string tok =
        list.substr(at, comma == std::string::npos ? comma : comma - at);
    const unsigned long value = std::stoul(tok);
    if (value == 0 || value > 0xFFFF) {
      throw std::invalid_argument("port out of range: " + tok);
    }
    ports.push_back(std::uint16_t(value));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  using garfield::core::NodeOptions;
  try {
    NodeOptions options;
    std::string config_path;
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string key = argv[i];
      const std::string value = argv[i + 1];
      if (key == "--rank") {
        options.rank = std::stoull(value);
      } else if (key == "--nodes") {
        options.nodes = std::stoull(value);
      } else if (key == "--listen-fd") {
        options.listen_fd = std::stoi(value);
      } else if (key == "--ports") {
        options.ports = parse_ports(value);
      } else if (key == "--config") {
        config_path = value;
      } else if (key == "--result") {
        options.result_path = value;
      } else {
        throw std::invalid_argument("unknown flag '" + key + "'");
      }
    }
    if (config_path.empty()) {
      throw std::invalid_argument("--config is required");
    }
    const garfield::core::DeploymentConfig config =
        garfield::core::load_config_file(config_path);
    return garfield::core::run_node(config, options);
  } catch (const std::exception& e) {
    std::cerr << "garfield_node: " << e.what() << '\n';
    return 2;
  }
}
