#include "net/thread_pool.h"

namespace garfield::net {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::submit(std::function<void()>&& task) {
  {
    util::MutexLock lock(mutex_);
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      cv_.wait(mutex_, [this]() GARFIELD_REQUIRES(mutex_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace garfield::net
