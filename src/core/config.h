// Deployment configuration shared by the Controller and the trainers.
//
// Mirrors the knobs of the paper's experiments: cluster shape (n_w, f_w,
// n_ps, f_ps), GAR choice for gradients and for models, attack selection,
// synchrony assumption (quorum sizes), data distribution (iid or not) and
// the contraction depth of decentralized learning.
#pragma once

#include <cstdint>
#include <string>

#include "nn/optimizer.h"

namespace garfield::core {

/// Which application (§5) to run.
enum class Deployment {
  kVanilla,         ///< single trusted server, plain averaging
  kCrashTolerant,   ///< replicated servers, averaging, primary/backup
  kSsmw,            ///< single server, robust GAR on gradients
  kMsmw,            ///< replicated servers, GARs on gradients and models
  kDecentralized,   ///< peer-to-peer, every node is Server+Worker
};

[[nodiscard]] std::string to_string(Deployment d);
[[nodiscard]] Deployment deployment_from_string(const std::string& s);

struct DeploymentConfig {
  Deployment deployment = Deployment::kSsmw;

  // --- learning task -----------------------------------------------------
  std::string model = "tiny_mlp";
  std::string dataset = "cluster";     ///< "cluster" | "teacher"
  float dataset_noise = 1.0F;          ///< cluster dataset difficulty
  std::size_t train_size = 2048;
  std::size_t test_size = 512;
  std::size_t batch_size = 16;         ///< per-worker mini-batch (paper: b/n)
  nn::SgdOptimizer::Options optimizer{};
  /// Worker-side (distributed) momentum — the §8 variance-reduction hook.
  float worker_momentum = 0.0F;

  // --- cluster shape ------------------------------------------------------
  std::size_t nw = 5;    ///< workers
  std::size_t fw = 0;    ///< declared Byzantine workers
  std::size_t nps = 1;   ///< parameter-server replicas
  std::size_t fps = 0;   ///< declared Byzantine servers

  // --- resilience ---------------------------------------------------------
  /// GAR spec strings (gars/registry.h grammar): a bare registry name
  /// ("krum") or a name with typed options
  /// ("centered_clip:tau=0.5,iterations=20"). validate() rejects unknown
  /// rules, unknown/malformed options and violated resilience inequalities.
  std::string gradient_gar = "average";  ///< GAR applied to worker gradients
  std::string model_gar = "median";      ///< GAR applied to server models
  /// Synchronous runs wait for all n replies; asynchronous ones for n - f.
  bool asynchronous = false;

  // --- adversary ----------------------------------------------------------
  /// Attack *plans* (attacks/registry.h grammar) the last fw workers / last
  /// fps servers actually mount ("" = declared-only, everyone behaves — the
  /// paper's throughput mode). A plan is one spec applied to the whole
  /// cohort ("reversed", "little_is_enough:z=2.5") or a ';'-separated
  /// per-rank assignment ("little_is_enough:z=1.5;2*sign_flip" = one LIE
  /// attacker plus two sign-flippers). validate() rejects unknown attacks,
  /// unknown/malformed options and plans whose counts don't match fw/fps.
  std::string worker_attack;
  std::string server_attack;
  /// Crash the primary server at this iteration (0 = never); used by the
  /// crash-tolerant baseline's failover test.
  std::size_t crash_primary_at = 0;

  // --- data distribution --------------------------------------------------
  /// Shard training data by class (strongly non-iid) instead of iid.
  bool non_iid = false;
  /// Decentralized contract() rounds per iteration (0 disables; Listing 3
  /// uses it when data is non-iid).
  std::size_t contraction_steps = 0;

  // --- persistence ----------------------------------------------------------
  /// Reporting server writes a wire-format checkpoint here every
  /// checkpoint_every iterations ("" disables).
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
  /// Start from a saved checkpoint instead of fresh initialization; every
  /// replica is seeded with the loaded parameters.
  std::string resume_from;

  // --- run control ----------------------------------------------------------
  std::size_t iterations = 200;
  std::size_t eval_every = 20;          ///< accuracy probe period (0 = never)
  std::size_t alignment_every = 0;      ///< Table-2 probe period (0 = off)
  std::uint64_t seed = 1;

  // --- simulated network --------------------------------------------------
  /// NetworkConditions spec (net/conditions.h grammar) driving both the
  /// live cluster and the analytic simulator:
  ///   "wan:latency=5ms,jitter=2ms;straggler:nodes=2,lag=50ms,from_iter=100"
  /// "" = ideal network. validate() rejects unknown clauses/options,
  /// negative or malformed durations, and node references outside the
  /// deployment.
  std::string network;
  /// RPC handler threads (0 = hardware concurrency). Pool threads only run
  /// handler compute — simulated latency lives on the cluster's timer
  /// wheel — so this is the real-contention knob bench_fig8 sweeps.
  std::size_t pool_threads = 0;
  /// Transport backend under the cluster: "inproc" (threads in one
  /// process, the default) or "tcp" (one OS process per node on localhost,
  /// framed streams — the paper's actual one-process-per-machine topology,
  /// see core/node_runner.h). Sync runs are bitwise identical across the
  /// two. validate() rejects anything else, and rejects tcp combined with
  /// knobs that need a shared address space (alignment_every, the
  /// imperative crash_primary_at fault injection).
  std::string transport = "inproc";
  /// Gradient-compression wire codec (net/codec.h grammar): "none" (the
  /// default), "int8", or "topk:k=0.01". Lossy codecs compress gradient
  /// exchanges with the configured codec and degrade model/state payloads
  /// to int8; both transport backends honour it identically, so sync runs
  /// stay bitwise reproducible per codec choice (though a lossy codec's
  /// trajectory differs from codec=none — see README). validate() rejects
  /// unknown codecs and malformed options.
  std::string codec = "none";

  /// Total node count of the deployment.
  [[nodiscard]] std::size_t total_nodes() const;
  /// Validate shape invariants (resilience inequalities, byzantine counts);
  /// throws std::invalid_argument on violation.
  void validate() const;
};

}  // namespace garfield::core
