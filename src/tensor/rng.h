// Deterministic random number generation for garfield.
//
// Every component that needs randomness (dataset synthesis, weight
// initialization, Byzantine attacks, network jitter) receives an explicit
// Rng seeded from (experiment seed, node id, purpose tag) so that entire
// distributed training runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace garfield::tensor {

/// SplitMix64 finalizer: bijective avalanche mixing of a 64-bit word.
/// Shared by Rng::fork's stream derivation and the cluster's per-edge
/// jitter hash so the mixing constants live in exactly one place.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seeded pseudo-random generator wrapping std::mt19937_64.
///
/// Not thread-safe; give each thread / node its own instance via fork().
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : engine_(seed), seed_mix_(seed ^ 0x2545f4914f6cdd1dULL) {}

  /// Derive an independent stream, e.g. one per node id. SplitMix-style
  /// mixing of (parent seed, tag) keeps child streams decorrelated even
  /// for adjacent tags, and distinct parent seeds yield distinct children.
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng(splitmix64_mix(seed_mix_ +
                              (tag + 1) * 0x9e3779b97f4a7c15ULL));
  }

  float normal(float mean = 0.0F, float stddev = 1.0F) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  float uniform(float lo = 0.0F, float hi = 1.0F) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    std::uniform_int_distribution<std::size_t> dist(0, n - 1);
    return dist(engine_);
  }

  bool bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_mix_;
};

}  // namespace garfield::tensor
