// Tests for the wire format (CRC-verified serialization) and model
// checkpointing, including corruption/truncation detection and trainer
// resume continuity.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.h"
#include "core/trainer.h"
#include "net/wire.h"
#include "tensor/rng.h"

namespace gn = garfield::net;
namespace gc = garfield::core;
namespace gt = garfield::tensor;

namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

// ------------------------------------------------------------------ crc32

TEST(Crc32, KnownVectors) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  std::vector<std::uint8_t> bytes(s, s + 9);
  EXPECT_EQ(gn::crc32(bytes), 0xCBF43926U);
  EXPECT_EQ(gn::crc32({}), 0x00000000U);
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  std::vector<std::uint8_t> a{1, 2, 3, 4};
  std::vector<std::uint8_t> b = a;
  b[2] ^= 0x01;
  EXPECT_NE(gn::crc32(a), gn::crc32(b));
}

// ------------------------------------------------------------------- wire

TEST(Wire, RoundTrip) {
  gt::FlatVector payload{1.5F, -2.25F, 0.0F, 3e7F};
  const auto blob = gn::encode(42, payload);
  EXPECT_EQ(blob.size(), gn::wire_size(payload.size()));
  const gn::WireMessage msg = gn::decode(blob);
  EXPECT_EQ(msg.iteration, 42u);
  EXPECT_EQ(msg.payload, payload);
}

TEST(Wire, EmptyPayloadRoundTrip) {
  const auto blob = gn::encode(0, gt::FlatVector{});
  const gn::WireMessage msg = gn::decode(blob);
  EXPECT_TRUE(msg.payload.empty());
}

TEST(Wire, DetectsPayloadCorruption) {
  gt::FlatVector payload(64, 1.0F);
  auto blob = gn::encode(7, payload);
  blob[40] ^= 0xFF;  // flip a payload byte
  EXPECT_THROW((void)gn::decode(blob), gn::WireError);
}

TEST(Wire, DetectsTruncation) {
  auto blob = gn::encode(7, gt::FlatVector(16, 2.0F));
  blob.resize(blob.size() - 4);
  EXPECT_THROW((void)gn::decode(blob), gn::WireError);
  blob.resize(10);  // shorter than the header
  EXPECT_THROW((void)gn::decode(blob), gn::WireError);
}

TEST(Wire, DetectsBadMagicAndVersion) {
  auto blob = gn::encode(1, gt::FlatVector{1.0F});
  auto bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)gn::decode(bad_magic), gn::WireError);
  auto bad_version = blob;
  bad_version[4] = 99;
  EXPECT_THROW((void)gn::decode(bad_version), gn::WireError);
}

TEST(Wire, DetectsHeaderSizeLie) {
  auto blob = gn::encode(1, gt::FlatVector(8, 1.0F));
  blob[16] = 4;  // claim 4 elements, blob carries 8
  EXPECT_THROW((void)gn::decode(blob), gn::WireError);
}

// ------------------------------------------------------------- checkpoint

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = temp_path("garfield_ckpt_roundtrip.bin");
  gt::Rng rng(1);
  gc::Checkpoint ckpt;
  ckpt.iteration = 123;
  ckpt.parameters.resize(1000);
  for (float& v : ckpt.parameters) v = rng.normal();
  gc::save_checkpoint(path, ckpt);
  const gc::Checkpoint loaded = gc::load_checkpoint(path);
  EXPECT_EQ(loaded.iteration, 123u);
  EXPECT_EQ(loaded.parameters, ckpt.parameters);
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadRejectsCorruptedFile) {
  const std::string path = temp_path("garfield_ckpt_corrupt.bin");
  gc::save_checkpoint(path, gc::Checkpoint{1, gt::FlatVector(64, 1.0F), {}});
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char garbage = 0x5A;
    f.write(&garbage, 1);
  }
  EXPECT_THROW((void)gc::load_checkpoint(path), gn::WireError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, LoadMissingFileThrows) {
  EXPECT_THROW((void)gc::load_checkpoint(temp_path("garfield_no_such.bin")),
               std::runtime_error);
}

TEST(Checkpoint, TrainerWritesAndResumes) {
  const std::string path = temp_path("garfield_ckpt_resume.bin");
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.model = "tiny_mlp";
  cfg.nw = 5;
  cfg.fw = 1;
  cfg.gradient_gar = "median";
  cfg.train_size = 1024;
  cfg.test_size = 256;
  cfg.batch_size = 16;
  cfg.optimizer.lr.gamma0 = 0.1F;
  cfg.iterations = 80;
  cfg.eval_every = 0;
  cfg.seed = 9;
  cfg.checkpoint_path = path;
  cfg.checkpoint_every = 40;
  const gc::TrainResult first = gc::train(cfg);
  ASSERT_TRUE(std::filesystem::exists(path));
  const gc::Checkpoint ckpt = gc::load_checkpoint(path);
  EXPECT_EQ(ckpt.iteration, 80u);

  // Resume: a short continuation run must not regress below the
  // checkpointed accuracy (it starts from the saved weights, not scratch).
  gc::DeploymentConfig resume = cfg;
  resume.checkpoint_path.clear();
  resume.checkpoint_every = 0;
  resume.resume_from = path;
  resume.iterations = 20;
  const gc::TrainResult second = gc::train(resume);
  EXPECT_GT(second.final_accuracy, first.final_accuracy - 0.15);
  EXPECT_GT(second.final_accuracy, 0.6);
  std::filesystem::remove(path);
}
