#include "tensor/vecops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace garfield::tensor {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) acc += double(a[i]) * double(b[i]);
  return acc;
}

double squared_distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = double(a[i]) - double(b[i]);
    acc += d * d;
  }
  return acc;
}

double norm(std::span<const float> x) { return std::sqrt(dot(x, x)); }

void subtract(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void mean_into(std::span<const FlatVector> inputs, std::span<float> out) {
  assert(!inputs.empty());
  assert(out.size() == inputs.front().size());
  std::fill(out.begin(), out.end(), 0.0F);
  for (const FlatVector& v : inputs) {
    assert(v.size() == out.size());
    axpy(1.0F, v, out);
  }
  scale(out, 1.0F / float(inputs.size()));
}

FlatVector mean(std::span<const FlatVector> inputs) {
  assert(!inputs.empty());
  FlatVector out(inputs.front().size());
  mean_into(inputs, out);
  return out;
}

double cosine(std::span<const float> a, std::span<const float> b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

bool all_finite(std::span<const float> x) {
  for (float v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace garfield::tensor
