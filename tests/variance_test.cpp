// Tests for the measure_variance tool (§3.1) and the Delta coefficients.
#include <gtest/gtest.h>

#include <cmath>

#include "gars/variance.h"
#include "nn/zoo.h"

namespace gg = garfield::gars;
namespace gt = garfield::tensor;
namespace gd = garfield::data;

TEST(VarianceDelta, MatchesClosedForms) {
  // Median: sqrt(n - f).
  EXPECT_DOUBLE_EQ(gg::variance_delta("median", 10, 2), std::sqrt(8.0));
  // MDA: 2 sqrt(2f / (n - f)).
  EXPECT_DOUBLE_EQ(gg::variance_delta("mda", 10, 2),
                   2.0 * std::sqrt(4.0 / 8.0));
  // Krum: sqrt(2 (n-f + (f(n-f-2) + f^2(n-f-1)) / (n-2f-2))).
  const double inner = 8.0 + (2.0 * 6.0 + 4.0 * 7.0) / 4.0;
  EXPECT_DOUBLE_EQ(gg::variance_delta("krum", 10, 2),
                   std::sqrt(2.0 * inner));
  EXPECT_EQ(gg::variance_delta("multi_krum", 10, 2),
            gg::variance_delta("krum", 10, 2));
}

TEST(VarianceDelta, KrumDegenerateDenominator) {
  // n = 2f + 2 makes the denominator zero: the bound is vacuous (inf).
  EXPECT_TRUE(std::isinf(gg::variance_delta("krum", 6, 2)));
}

TEST(VarianceDelta, UnknownGarThrows) {
  EXPECT_THROW((void)gg::variance_delta("average", 5, 1),
               std::invalid_argument);
}

TEST(VarianceDelta, MdaIsWeakestAssumption) {
  // §3.1: MDA's variance assumption is weaker than Krum's and Median's,
  // i.e. its Delta is the smallest for the same (n, f).
  for (std::size_t n : {7, 11, 15}) {
    for (std::size_t f : {1, 2}) {
      const double mda = gg::variance_delta("mda", n, f);
      EXPECT_LT(mda, gg::variance_delta("krum", n, f));
      EXPECT_LT(mda, gg::variance_delta("median", n, f));
    }
  }
}

TEST(MeasureVariance, ReportsAllGars) {
  gt::Rng rng(1);
  auto model = garfield::nn::make_model("tiny_mlp", rng);
  gd::Dataset train = gd::make_cluster_dataset({16}, 10, 512, rng, 0.8F);
  gg::VarianceSetup setup;
  setup.n = 8;
  setup.f = 2;
  setup.steps = 5;
  setup.batch_size = 16;
  setup.huge_batch = 512;
  gg::VarianceReport report = gg::measure_variance(*model, train, setup);
  EXPECT_EQ(report.steps, 5u);
  ASSERT_EQ(report.stats.size(), 3u);
  for (const auto& stat : report.stats) {
    EXPECT_GE(stat.fraction_satisfied, 0.0);
    EXPECT_LE(stat.fraction_satisfied, 1.0);
    EXPECT_GT(stat.mean_ratio, 0.0);
    EXPECT_LE(stat.min_ratio, stat.mean_ratio);
  }
  EXPECT_NO_THROW((void)report.for_gar("mda"));
  EXPECT_THROW((void)report.for_gar("bulyan"), std::invalid_argument);
}

TEST(MeasureVariance, LargerBatchSatisfiesConditionMoreOften) {
  // The condition compares gradient noise to gradient norm; bigger worker
  // batches reduce noise, so the satisfaction ratio must not get worse.
  gt::Rng rng(2);
  auto model_small = garfield::nn::make_model("tiny_mlp", rng);
  gt::Rng rng2(2);
  auto model_big = garfield::nn::make_model("tiny_mlp", rng2);
  gd::Dataset train = gd::make_cluster_dataset({16}, 10, 1024, rng, 1.0F);

  gg::VarianceSetup small;
  small.n = 8;
  small.f = 2;
  small.steps = 8;
  small.batch_size = 4;
  small.huge_batch = 1024;
  gg::VarianceSetup big = small;
  big.batch_size = 128;

  const auto rs = gg::measure_variance(*model_small, train, small);
  const auto rb = gg::measure_variance(*model_big, train, big);
  EXPECT_GE(rb.for_gar("mda").mean_ratio, rs.for_gar("mda").mean_ratio);
}

TEST(MeasureVariance, RequiresMoreWorkersThanByzantine) {
  gt::Rng rng(3);
  auto model = garfield::nn::make_model("tiny_mlp", rng);
  gd::Dataset train = gd::make_cluster_dataset({16}, 10, 128, rng, 1.0F);
  gg::VarianceSetup bad;
  bad.n = 2;
  bad.f = 2;
  EXPECT_THROW((void)gg::measure_variance(*model, train, bad),
               std::invalid_argument);
}
