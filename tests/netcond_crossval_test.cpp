// Cross-validation of the NetworkConditions model across the two execution
// planes (README "Network conditions"): every scenario here writes ONE
// spec string and runs it through
//   - the analytic simulator (sim::simulate_iteration on the calibrated
//     cost model), and
//   - the live in-process cluster (core::train on tiny models),
// then asserts that the paper-shaped qualitative invariants agree:
//
//   1. straggler lag favors an asynchronous n-f quorum over a synchronous
//      full-cohort wait (the paper's asynchrony argument, §2/§6),
//   2. heterogeneous slow links shift the Fig 7 breakdown toward
//      communication,
//   3. a partition window is pure delay — it binds exactly while the
//      window is active and never changes what a synchronous deployment
//      learns (messages are delayed, not dropped),
//   4. decentralized all-to-all communication dominates the parameter
//      server as n grows (the O(n^2) fabric load of Fig 9a).
//
// Live-plane timing assertions are HARD FLOORS: a conditioned synchronous
// run cannot finish before its injected timer-wheel delays, no matter how
// loaded the machine is — unlike run-vs-run wall-clock differences, which
// CPU contention can swamp. The one differential assertion (sync vs async
// under a straggler) rides a 300ms injected gap, far above any plausible
// differential noise between two adjacent tiny runs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <optional>

#include "core/config.h"
#include "core/trainer.h"
#include "net/cluster.h"
#include "sim/deployment_sim.h"
#include "support/test_support.h"
#include "tensor/parallel.h"

namespace gc = garfield::core;
namespace gs = garfield::sim;
namespace gt = garfield::testsupport;

namespace {

/// Shared spec: nodes 0..6 with server 0 and workers 1..6 (the SSMW
/// layout both planes agree on); worker 6 straggles from iteration 0.
constexpr const char* kStragglerSpec = "straggler:nodes=6,lag=60ms";

gs::SimSetup sim_ssmw() {
  gs::SimSetup s;
  s.deployment = gs::SimDeployment::kSsmw;
  s.d = 1'000'000;
  s.batch_size = 32;
  s.nw = 6;
  s.fw = 1;
  s.nps = 1;
  s.fps = 0;
  s.gradient_gar = "multi_krum";
  s.device = gs::cpu_profile();
  return s;
}

gc::DeploymentConfig live_ssmw() {
  gc::DeploymentConfig cfg;
  cfg.deployment = gc::Deployment::kSsmw;
  cfg.model = "tiny_mlp";
  cfg.dataset = "cluster";
  cfg.train_size = 256;
  cfg.test_size = 64;
  cfg.batch_size = 8;
  cfg.nw = 6;
  cfg.fw = 1;
  cfg.gradient_gar = "multi_krum";
  cfg.iterations = 5;
  cfg.eval_every = 1;
  cfg.seed = 20260728;
  return cfg;
}

double live_seconds(const gc::DeploymentConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  (void)gc::train(cfg);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void expect_same_curve(const gc::TrainResult& a, const gc::TrainResult& b,
                       const char* what) {
  ASSERT_EQ(a.curve.size(), b.curve.size()) << what;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy) << what << " @" << i;
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss) << what << " @" << i;
  }
}

}  // namespace

// ------------------------------------------------- scenario 1: stragglers

TEST(NetcondCrossval, StragglerLagFavorsAsyncQuorumOnBothPlanes) {
  // Analytic plane: the synchronous full-cohort pull waits the straggler
  // lag out; the asynchronous n-f quorum dodges it.
  gs::SimSetup sim = sim_ssmw();
  sim.conditions = garfield::net::NetworkConditions::parse(kStragglerSpec);
  sim.asynchronous = false;
  const double sim_sync = gs::simulate_iteration(sim).total();
  sim.asynchronous = true;
  const double sim_async = gs::simulate_iteration(sim).total();
  gs::SimSetup ideal = sim_ssmw();
  ideal.asynchronous = false;
  const double sim_ideal_sync = gs::simulate_iteration(ideal).total();
  EXPECT_GT(sim_sync, sim_async);
  EXPECT_GT(sim_sync - sim_ideal_sync, 0.045)  // ~the 60ms lag, not noise
      << "sync plane did not absorb the straggler lag";
  // The async quorum pays (nearly) nothing for the straggler.
  ideal.asynchronous = true;
  EXPECT_NEAR(sim_async, gs::simulate_iteration(ideal).total(), 0.002);

  // Live plane: same spec string, same ordering. 5 iterations x 60ms lag
  // bound the synchronous run from below; the asynchronous quorum never
  // waits for worker 6. The lag is sized to dominate scheduler noise even
  // on a loaded ASan runner, so the margins are absolute, not ratios.
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig live = live_ssmw();
  live.network = kStragglerSpec;
  ASSERT_NO_THROW(live.validate());
  live.asynchronous = false;
  const double live_sync = live_seconds(live);
  live.asynchronous = true;
  const double live_async = live_seconds(live);
  garfield::tensor::set_parallel_threads(0);
  EXPECT_GT(live_sync, 0.25);  // >= 5 iterations x 60ms, minus slack
  EXPECT_GT(live_sync, live_async + 0.15);
}

// ------------------------------------- scenario 2: heterogeneous links

TEST(NetcondCrossval, SlowLinksShiftTheBreakdownTowardCommunication) {
  const char* spec = "wan:latency=5ms;hetero:slow_links=1-2,factor=10";
  // Analytic plane: degraded edges inflate the communication share of the
  // Fig 7 breakdown; computation and aggregation stay put.
  gs::SimSetup sim = sim_ssmw();
  sim.asynchronous = false;
  const gs::IterationBreakdown ideal = gs::simulate_iteration(sim);
  sim.conditions = garfield::net::NetworkConditions::parse(spec);
  const gs::IterationBreakdown hetero = gs::simulate_iteration(sim);
  EXPECT_GT(hetero.communication, ideal.communication);
  EXPECT_DOUBLE_EQ(hetero.computation, ideal.computation);
  EXPECT_DOUBLE_EQ(hetero.aggregation, ideal.aggregation);
  EXPECT_GT(hetero.communication / hetero.total(),
            ideal.communication / ideal.total());

  // Live plane: the same spec slows the synchronous run (workers 1-2 serve
  // over 10x-degraded links the full-cohort quorum cannot dodge) without
  // changing a single bit of what it learns. The timing claim is a hard
  // floor — every iteration's quorum waits a 50ms slow-edge delivery the
  // timer wheel will not release early — because an ideal-vs-conditioned
  // wall-clock *difference* is swamped by CPU contention on a loaded
  // runner.
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig live = live_ssmw();
  live.iterations = 3;
  live.asynchronous = false;
  const gc::TrainResult plain = gc::train(live);
  live.network = spec;
  ASSERT_NO_THROW(live.validate());
  const auto t0 = std::chrono::steady_clock::now();
  const gc::TrainResult slowed = gc::train(live);
  const double slowed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  garfield::tensor::set_parallel_threads(0);
  EXPECT_GT(slowed_s, 0.12);  // >= 3 iterations x 50ms, minus slack
  expect_same_curve(plain, slowed, "hetero links are pure latency");
}

// ------------------------------------------ scenario 3: partition window

TEST(NetcondCrossval, PartitionWindowBindsOnlyWhileActiveOnBothPlanes) {
  // Window [1, 3): server 0 loses workers 5-6 for two iterations; the
  // messages arrive late (delayed, never dropped).
  const char* spec = "partition:a=0,b=5-6,from_iter=1,len=2,lag=100ms";
  // Analytic plane: the breakdown is a function of *when* you look — the
  // partition lag binds inside the window and heals at GST.
  gs::SimSetup sim = sim_ssmw();
  sim.asynchronous = false;
  sim.conditions = garfield::net::NetworkConditions::parse(spec);
  sim.iteration = 0;
  const double before = gs::simulate_iteration(sim).total();
  sim.iteration = 1;
  const double inside = gs::simulate_iteration(sim).total();
  sim.iteration = 3;
  const double after = gs::simulate_iteration(sim).total();
  EXPECT_NEAR(before, after, 1e-12);
  EXPECT_GT(inside, before + 0.08);  // ~the 100ms lag

  // Live plane: the two affected iterations each wait a 100ms cross-cut
  // delivery — a hard floor no scheduler noise can undercut (run-vs-run
  // differences can; see the hetero scenario) — and learning is bitwise
  // unaffected (the delayed replies still make the synchronous quorum).
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig live = live_ssmw();
  live.asynchronous = false;
  const gc::TrainResult ideal = gc::train(live);
  live.network = spec;
  ASSERT_NO_THROW(live.validate());
  const auto t0 = std::chrono::steady_clock::now();
  const gc::TrainResult partitioned = gc::train(live);
  const double part_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  garfield::tensor::set_parallel_threads(0);
  EXPECT_GT(part_s, 0.18);  // >= 2 window iterations x 100ms, minus slack
  expect_same_curve(ideal, partitioned,
                    "pre-GST delays never change sync learning");
}

// --------------------------------- scenario 4: O(n^2) decentralized load

TEST(NetcondCrossval, DecentralizedFabricLoadDominatesOnBothPlanes) {
  // Analytic plane: doubling n grows decentralized communication
  // super-linearly but parameter-server communication ~linearly.
  const auto sim_comm = [](gs::SimDeployment dep, std::size_t n) {
    gs::SimSetup s;
    s.deployment = dep;
    s.d = 10'000'000;
    s.nw = n;
    s.fw = 0;
    s.nps = 1;
    s.gradient_gar = "median";
    s.model_gar = "median";
    s.asynchronous = false;
    return gs::communication_time(s);
  };
  const double sim_dec_ratio =
      sim_comm(gs::SimDeployment::kDecentralized, 8) /
      sim_comm(gs::SimDeployment::kDecentralized, 4);
  const double sim_ps_ratio = sim_comm(gs::SimDeployment::kSsmw, 8) /
                              sim_comm(gs::SimDeployment::kSsmw, 4);
  // Super-linear vs linear: the analytic mix of the linear NIC term and
  // the quadratic fabric term puts decentralized clearly above the
  // parameter server's ~2x without reaching the pure (8/4)^2.
  EXPECT_GT(sim_dec_ratio, 2.5);
  EXPECT_LT(sim_ps_ratio, 2.3);

  // Live plane: floats_transferred is exact on the in-process transport —
  // the decentralized all-to-all moves O(n^2) floats per iteration where
  // the parameter server moves O(n).
  garfield::tensor::set_parallel_threads(1);
  const auto live_floats = [](gc::Deployment dep, std::size_t n) {
    gc::DeploymentConfig cfg;
    cfg.deployment = dep;
    cfg.model = "tiny_mlp";
    cfg.train_size = 256;
    cfg.test_size = 64;
    cfg.batch_size = 8;
    cfg.nw = n;
    cfg.fw = 0;
    cfg.nps = 1;
    cfg.gradient_gar = "median";
    cfg.model_gar = "median";
    cfg.iterations = 2;
    cfg.eval_every = 0;
    cfg.seed = 7;
    return double(gc::train(cfg).net_stats.floats_transferred);
  };
  const double live_dec_ratio =
      live_floats(gc::Deployment::kDecentralized, 8) /
      live_floats(gc::Deployment::kDecentralized, 4);
  const double live_ps_ratio = live_floats(gc::Deployment::kSsmw, 8) /
                               live_floats(gc::Deployment::kSsmw, 4);
  garfield::tensor::set_parallel_threads(0);
  EXPECT_GT(live_dec_ratio, 3.0);
  EXPECT_LT(live_ps_ratio, 3.0);
  // The planes agree on the ordering itself.
  EXPECT_GT(live_dec_ratio, live_ps_ratio);
  EXPECT_GT(sim_dec_ratio, sim_ps_ratio);
}

// ------------------------------------------- scenario 5: fault injection

TEST(NetcondCrossval, FaultRetryTailBindsOnlyInsideTheWindowOnBothPlanes) {
  // Window [1, 3): every edge drops 40% of attempts and spikes half its
  // deliveries by 20ms. The analytic plane charges the expected retry
  // tail plus the expected spike mass inside the window and EXACTLY zero
  // outside it; the live plane retries every lost attempt within the
  // budget, so the synchronous run learns the same bits as the ideal one.
  // (The rate is sized so the 12 in-window edge draws under this seed
  // really contain drops — the verdict is a pure hash, so if they fire
  // once they fire forever.)
  const char* spec =
      "fault:drop=0.4,delay_spike=20ms,spike=0.5,from_iter=1,len=2";
  gs::SimSetup sim = sim_ssmw();
  sim.asynchronous = false;
  sim.conditions = garfield::net::NetworkConditions::parse(spec);
  sim.iteration = 0;
  const double before = gs::simulate_iteration(sim).total();
  sim.iteration = 1;
  const double inside = gs::simulate_iteration(sim).total();
  sim.iteration = 3;
  const double after = gs::simulate_iteration(sim).total();
  gs::SimSetup ideal_setup = sim_ssmw();
  ideal_setup.asynchronous = false;
  const double ideal = gs::simulate_iteration(ideal_setup).total();
  EXPECT_DOUBLE_EQ(before, ideal);
  EXPECT_DOUBLE_EQ(after, ideal);
  EXPECT_GT(inside, ideal + 0.009);  // >= the 10ms expected spike mass

  // Live plane: same spec string. Faults really fired, every one was
  // recovered (no give-ups), and the curve is bitwise the ideal curve.
  garfield::tensor::set_parallel_threads(1);
  gc::DeploymentConfig live = live_ssmw();
  live.asynchronous = false;
  const gc::TrainResult plain = gc::train(live);
  live.network = spec;
  ASSERT_NO_THROW(live.validate());
  const gc::TrainResult faulted = gc::train(live);
  garfield::tensor::set_parallel_threads(0);
  EXPECT_GT(faulted.net_stats.faults_injected, 0u);
  EXPECT_GT(faulted.net_stats.retries, 0u);
  EXPECT_EQ(faulted.net_stats.retry_give_ups, 0u);
  expect_same_curve(plain, faulted, "recovered faults are pure latency");
}

// ------------------------------------------- scenario 6: bandwidth caps

TEST(NetcondCrossval, BandwidthMakesBytesCostTimeOnBothPlanes) {
  // A `bw=` cap turns payload size into delivery time. Both planes must
  // agree on the shape: a full-gradient exchange costs measurably more
  // than a scalar exchange under the same spec, and without the cap the
  // two cost (nearly) the same.
  const char* spec = "wan:latency=1ms,bw=10Mbps";  // 1.25 MB/s

  // Analytic plane: capping the edge rate inflates communication by the
  // serialization time of the d-float gradient; a scalar-sized payload
  // barely notices the same cap.
  gs::SimSetup big = sim_ssmw();  // d = 1e6 floats = 4 MB => ~3.2 s/frame
  big.asynchronous = false;
  const double big_ideal = gs::simulate_iteration(big).communication;
  big.conditions = garfield::net::NetworkConditions::parse(spec);
  const double big_capped = gs::simulate_iteration(big).communication;
  gs::SimSetup scalar = sim_ssmw();
  scalar.asynchronous = false;
  scalar.d = 100;
  const double scalar_ideal = gs::simulate_iteration(scalar).communication;
  scalar.conditions = garfield::net::NetworkConditions::parse(spec);
  const double scalar_capped = gs::simulate_iteration(scalar).communication;
  EXPECT_GT(big_capped - big_ideal, 1.0)
      << "the 4 MB exchange must pay seconds of serialization at 1.25 MB/s";
  EXPECT_LT(scalar_capped - scalar_ideal, 0.01)
      << "a 100-float exchange pays microseconds under the same cap";

  // Live plane: same spec string on a raw two-node cluster. The serving
  // handler is free (no compute), so elapsed time is the timer wheel's
  // serialization charge — a hard floor no loaded runner can undercut.
  garfield::net::Cluster::Options opts;
  opts.nodes = 2;
  opts.conditions = garfield::net::NetworkConditions::parse(spec);
  opts.seed = 3;
  garfield::net::Cluster cluster(opts);
  constexpr std::size_t kBigD = 125'000;  // 500 KB frame => 0.4 s at the cap
  auto big_payload = std::make_shared<const garfield::net::Payload>(
      garfield::net::Payload(kBigD, 1.0F));
  auto scalar_payload = std::make_shared<const garfield::net::Payload>(
      garfield::net::Payload(1, 1.0F));
  cluster.register_handler(1, "grad", [&](const garfield::net::Request&) {
    return garfield::net::HandlerResult::reply(big_payload);
  });
  cluster.register_handler(1, "scalar", [&](const garfield::net::Request&) {
    return garfield::net::HandlerResult::reply(scalar_payload);
  });
  const garfield::net::NodeId peer[] = {1};
  const auto timed = [&](const char* method) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto replies = cluster.collect(0, peer, method, 0, nullptr, 1);
    EXPECT_EQ(replies.size(), 1u) << method;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const double scalar_s = timed("scalar");
  const double grad_s = timed("grad");
  EXPECT_GT(grad_s, 0.35) << "500 KB at 1.25 MB/s is a 0.4 s hard floor";
  // Differential with a margin far above scheduler noise (the injected
  // serialization gap is ~0.4 s; the scalar reply pays ~1 ms of latency).
  EXPECT_GT(grad_s, scalar_s + 0.3);
}

TEST(NetcondCrossval, BandwidthRunsStayBitwiseDeterministicAcrossBackends) {
  // Serialization delays and the per-link busy queue shape *time*, never
  // the trajectory: a synchronous run under a bw= cap is bitwise
  // reproducible run-to-run, and identical across transport backends.
  gc::DeploymentConfig live = live_ssmw();
  live.network = "wan:latency=200us,jitter=100us,bw=50Mbps";
  live.asynchronous = false;
  ASSERT_NO_THROW(live.validate());
  const gc::TrainResult a = gc::train(live);
  const gc::TrainResult b = gc::train(live);
  ASSERT_FALSE(a.final_parameters.empty());
  ASSERT_EQ(a.final_parameters.size(), b.final_parameters.size());
  EXPECT_EQ(std::memcmp(a.final_parameters.data(), b.final_parameters.data(),
                        a.final_parameters.size() * sizeof(float)),
            0)
      << "bandwidth shaping changed the learned bits run-to-run";
  expect_same_curve(a, b, "bw= is pure timing");
  EXPECT_EQ(a.net_stats.bytes_sent, b.net_stats.bytes_sent);

  gc::DeploymentConfig tcp_cfg = live;
  tcp_cfg.transport = "tcp";
  std::optional<gc::TrainResult> tcp;
  try {
    tcp = gc::train(tcp_cfg);
  } catch (const std::runtime_error& e) {
    if (std::string(e.what()).find("garfield_node") == std::string::npos) {
      throw;
    }
  }
  if (!tcp.has_value()) {
    GTEST_SKIP() << "garfield_node launcher unavailable in this build";
  }
  ASSERT_EQ(a.final_parameters.size(), tcp->final_parameters.size());
  EXPECT_EQ(std::memcmp(a.final_parameters.data(),
                        tcp->final_parameters.data(),
                        a.final_parameters.size() * sizeof(float)),
            0)
      << "bw= broke the inproc|tcp parity contract";
  expect_same_curve(a, *tcp, "bw= parity across backends");
}

// -------------------------------------- matrix: (GAR x attack x network)

TEST(NetcondCrossval, ScenarioMatrixSweepsTheNetworkAxis) {
  // Every robustness cell now carries a network column: the same GAR x
  // attack cell runs ideal, under a straggler phase and under a partition
  // window. Degraded cells silence at most the two nodes the sizing
  // spares (slack 2 + the f = 1 Byzantine budget keeps every quorum
  // above its GAR floor).
  gt::ScenarioMatrix matrix;
  matrix.gars = {"median", "multi_krum"};
  matrix.attacks = {"sign_flip", "little_is_enough:z=1.5"};
  matrix.byzantine_fs = {1};
  matrix.quorum_slacks = {2};
  matrix.networks = {
      "",
      "straggler:nodes=0,lag=10ms",           // silence one honest node
      "partition:a=1,b=0,from_iter=0,len=5",  // cut another one off
  };
  std::size_t cells = 0;
  std::size_t degraded_cells = 0;
  matrix.for_each([&](const gt::Scenario& cell) {
    ++cells;
    const gt::ScenarioResult result = gt::run_scenario(cell);
    EXPECT_LE(result.rms_deviation, gt::robustness_tolerance(cell))
        << cell.gar << " x " << cell.attack << " x '" << cell.network << "'";
    if (!cell.network.empty()) {
      ++degraded_cells;
      // The degraded node's payload really missed the quorum.
      EXPECT_LT(result.received, cell.n)
          << cell.gar << " x " << cell.attack << " x '" << cell.network
          << "'";
    }
  });
  EXPECT_EQ(cells, 2u * 2u * 3u);
  EXPECT_EQ(degraded_cells, 2u * 2u * 2u);
}

TEST(NetcondCrossval, ScenarioMatrixSweepsTheFaultAxis) {
  // The `faults` axis rides inside the network axis. The ingress model
  // mirrors the live retry budget: a modest drop rate is always recovered
  // (the quorum stays whole), while a near-certain drop rate on one edge
  // exhausts all attempts — a give-up, the node reads as silent. Cell
  // sizing (slack 2 + the f = 1 budget) spares the silenced node, so the
  // robustness bound must hold either way.
  gt::ScenarioMatrix matrix;
  matrix.gars = {"median", "multi_krum"};
  matrix.attacks = {"sign_flip"};
  matrix.byzantine_fs = {1};
  matrix.quorum_slacks = {2};
  matrix.faults = {
      "",
      "fault:drop=0.3",            // lossy but inside the retry budget
      "fault:drop=0.999,edges=0",  // one edge almost certainly gives up
  };
  std::size_t cells = 0;
  std::size_t silenced = 0;
  matrix.for_each([&](const gt::Scenario& cell) {
    ++cells;
    const gt::ScenarioResult result = gt::run_scenario(cell);
    EXPECT_LE(result.rms_deviation, gt::robustness_tolerance(cell))
        << cell.gar << " x " << cell.attack << " x '" << cell.fault << "'";
    if (cell.fault == "fault:drop=0.3") {
      EXPECT_EQ(result.received, cell.n)
          << "a 0.3 drop rate must never survive 8 retry attempts";
    }
    if (result.received < cell.n) ++silenced;
  });
  EXPECT_EQ(cells, 2u * 3u);
  EXPECT_GE(silenced, 1u) << "the give-up spec never silenced its edge";
}
