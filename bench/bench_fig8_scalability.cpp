// Figure 8 — throughput (batches/sec) with an increasing number of
// workers, CPU panel (CifarNet) and GPU panel (ResNet-50).
//
// Paper shapes: every parameter-server system scales with nw (vanilla
// fastest, then crash-tolerant ~ MSMW, SSMW close to AggregaThor);
// decentralized learning does not scale; GPU throughput is about an order
// of magnitude above CPU.
#include <cstdio>

#include "sim/deployment_sim.h"
#include "sim/model_spec.h"

namespace {

using namespace garfield::sim;

void panel(const char* title, const char* model, const DeviceProfile& device,
           const LinkProfile& link, std::size_t batch,
           const std::vector<std::size_t>& nws) {
  std::printf("\n%s\n%-6s %-10s %-16s %-10s %-10s %-10s %-14s\n", title, "nw",
              "vanilla", "crash_tolerant", "ssmw", "msmw", "aggr.thor",
              "decentralized");
  for (std::size_t nw : nws) {
    SimSetup s;
    s.d = model_spec(model).parameters;
    s.batch_size = batch;
    s.nw = nw;
    s.fw = nw > 6 ? 3 : 1;
    s.nps = 3;
    s.fps = 1;
    s.gradient_gar = "multi_krum";
    s.model_gar = "median";
    s.device = device;
    s.link = link;

    auto at = [&](SimDeployment dep, bool native, bool sync) {
      SimSetup v = s;
      v.deployment = dep;
      v.native_runtime = native;
      v.asynchronous = !sync;
      if (dep == SimDeployment::kVanilla || dep == SimDeployment::kSsmw)
        v.nps = 1;
      return batches_per_sec(v);
    };
    std::printf("%-6zu %-10.1f %-16.1f %-10.1f %-10.1f %-10.1f %-14.1f\n",
                nw, at(SimDeployment::kVanilla, true, true),
                at(SimDeployment::kCrashTolerant, false, true),
                at(SimDeployment::kSsmw, false, false),
                at(SimDeployment::kMsmw, false, false),
                // AggregaThor: SSMW architecture, synchronous, older
                // runtime (no parallelized deserialization) — modelled as
                // the synchronous SSMW point.
                at(SimDeployment::kSsmw, false, true),
                at(SimDeployment::kDecentralized, false, false));
  }
}

}  // namespace

int main() {
  panel("Fig 8a — CPU cluster, CifarNet, batches/sec vs nw", "CifarNet",
        cpu_profile(), cpu_link(), 32,
        {3, 5, 7, 9, 11, 13, 15, 17, 19});
  panel("Fig 8b — GPU cluster, ResNet-50, batches/sec vs nw", "ResNet-50",
        gpu_profile(), gpu_link(), 100, {5, 7, 9, 11, 13});
  std::printf("\nPaper shapes: all parameter-server systems scale with nw; "
              "the decentralized\ncolumn flattens; GPU panel sits about an "
              "order of magnitude above CPU.\n");
  return 0;
}
