// Analytical cost model for the throughput experiments.
//
// Wall-clock on one container cannot reproduce a 24-node Grid5000 cluster,
// so the throughput figures are regenerated from a calibrated cost model
// (see DESIGN.md "two execution planes"). The model composes, per training
// iteration, the same three components the paper's breakdown reports
// (Fig 7/16): computation, communication (incl. serialization) and robust
// aggregation. Constants are calibrated against the paper's reported
// anchors: ~1.6 s/iteration ResNet-50 gradient computation on the CPU
// cluster, 10 Gbps links, GPU ≈ one order of magnitude faster end-to-end,
// and the Fig 3 GAR micro-benchmark ordering.
#pragma once

#include <cstddef>
#include <string>

namespace garfield::sim {

/// Compute-device profile (the paper evaluates CPUs and GPUs).
struct DeviceProfile {
  std::string name;
  /// Gradient computation rate: parameter-sample units per second
  /// (time = d * batch / rate).
  double compute_rate = 0.0;
  /// GAR coordinate-operation rate (floats per second).
  double gar_rate = 0.0;
  /// Serialization/deserialization rate (floats per second). Models the
  /// TF-runtime <-> Python context switches of §4.1; GPUs pay it too since
  /// gRPC cannot send GPU-resident buffers (§4.4).
  double serialize_rate = 0.0;
  /// Fixed per-RPC overhead in seconds.
  double rpc_overhead = 0.0;
  /// Fixed per-iteration framework overhead (kernel launches, Python
  /// driver loop, optimizer bookkeeping). Dominates tiny models, which is
  /// why fault-tolerance slowdowns are invisible on MNIST_CNN and grow
  /// with model size before saturating (Fig 6/15).
  double iteration_overhead = 0.0;
};

[[nodiscard]] DeviceProfile cpu_profile();
[[nodiscard]] DeviceProfile gpu_profile();

/// Point-to-point link profile.
struct LinkProfile {
  double bandwidth_floats = 312.5e6;  ///< 10 Gbps / 4 bytes
  double latency = 100e-6;            ///< per-message one-way latency (s)
};

/// Grid5000 CPU cluster: 2 x 10 Gbps Ethernet (we model one NIC).
[[nodiscard]] LinkProfile cpu_link();
/// GPU cluster path: bonded NICs + nccl GPU-to-GPU collectives give a
/// ~4x effective transfer rate over the plain gRPC path (§4.2).
[[nodiscard]] LinkProfile gpu_link();

/// The slow edge class of a heterogeneous deployment
/// (net/conditions.h "hetero:slow_links=...,factor=F"): `factor` x the
/// latency at 1/factor the bandwidth of the base class. Both planes agree
/// on the factor; only the analytic plane needs the derated bandwidth.
[[nodiscard]] LinkProfile degraded(const LinkProfile& base, double factor);

/// C(n, k) saturating at a large cap (MDA's exponential term).
[[nodiscard]] double binomial(std::size_t n, std::size_t k);

/// Predicted aggregation time of one GAR call with n inputs of dimension d
/// on the given device. Implements the asymptotic shapes of §6.3:
/// Average/Median linear in n·d, (Multi-)Krum and Bulyan quadratic in n,
/// MDA quadratic + C(n,f) subset-search term, all linear in d.
[[nodiscard]] double gar_time(const std::string& gar, std::size_t n,
                              std::size_t f, std::size_t d,
                              const DeviceProfile& device);

}  // namespace garfield::sim
