#include "nn/zoo.h"

#include <memory>
#include <stdexcept>

#include "nn/layers.h"

namespace garfield::nn {

namespace {

ModelPtr make_tiny_mlp(tensor::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->push(std::make_unique<Linear>(16, 32, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Linear>(32, 10, rng));
  return std::make_unique<Model>("tiny_mlp", std::move(net),
                                 tensor::Shape{16}, 10);
}

ModelPtr make_small_mlp(tensor::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->push(std::make_unique<Linear>(64, 128, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Linear>(128, 64, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Linear>(64, 10, rng));
  return std::make_unique<Model>("small_mlp", std::move(net),
                                 tensor::Shape{64}, 10);
}

ModelPtr make_mnist_cnn(tensor::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->push(std::make_unique<Conv2d>(1, 8, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Conv2d>(8, 16, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Flatten>());
  net->push(std::make_unique<Linear>(16 * 4 * 4, 64, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Linear>(64, 10, rng));
  return std::make_unique<Model>("mnist_cnn", std::move(net),
                                 tensor::Shape{1, 16, 16}, 10);
}

ModelPtr make_cifarnet(tensor::Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->push(std::make_unique<Conv2d>(3, 16, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Conv2d>(16, 32, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Flatten>());
  net->push(std::make_unique<Linear>(32 * 4 * 4, 128, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Linear>(128, 10, rng));
  return std::make_unique<Model>("cifarnet", std::move(net),
                                 tensor::Shape{3, 16, 16}, 10);
}

ModelPtr make_resnet_mini(tensor::Rng& rng) {
  auto residual_block = [&rng](std::size_t channels) {
    auto inner = std::make_unique<Sequential>();
    inner->push(std::make_unique<Conv2d>(channels, channels, 3, 1, 1, rng));
    inner->push(std::make_unique<ReLU>());
    inner->push(std::make_unique<Conv2d>(channels, channels, 3, 1, 1, rng));
    return std::make_unique<Residual>(std::move(inner));
  };
  auto net = std::make_unique<Sequential>();
  net->push(std::make_unique<Conv2d>(3, 8, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(residual_block(8));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(residual_block(8));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Flatten>());
  net->push(std::make_unique<Linear>(8 * 4 * 4, 10, rng));
  return std::make_unique<Model>("resnet_mini", std::move(net),
                                 tensor::Shape{3, 16, 16}, 10);
}

ModelPtr make_inception_mini(tensor::Rng& rng) {
  auto inception_block = [&rng](std::size_t in_ch) {
    std::vector<ModulePtr> branches;
    // 1x1 branch.
    auto b1 = std::make_unique<Sequential>();
    b1->push(std::make_unique<Conv2d>(in_ch, 4, 1, 1, 0, rng));
    b1->push(std::make_unique<ReLU>());
    branches.push_back(std::move(b1));
    // 3x3 branch (1x1 reduce then 3x3).
    auto b3 = std::make_unique<Sequential>();
    b3->push(std::make_unique<Conv2d>(in_ch, 4, 1, 1, 0, rng));
    b3->push(std::make_unique<ReLU>());
    b3->push(std::make_unique<Conv2d>(4, 8, 3, 1, 1, rng));
    b3->push(std::make_unique<ReLU>());
    branches.push_back(std::move(b3));
    // 5x5 branch (as two stacked 3x3, the Inception-v2 trick).
    auto b5 = std::make_unique<Sequential>();
    b5->push(std::make_unique<Conv2d>(in_ch, 2, 1, 1, 0, rng));
    b5->push(std::make_unique<ReLU>());
    b5->push(std::make_unique<Conv2d>(2, 4, 3, 1, 1, rng));
    b5->push(std::make_unique<ReLU>());
    b5->push(std::make_unique<Conv2d>(4, 4, 3, 1, 1, rng));
    b5->push(std::make_unique<ReLU>());
    branches.push_back(std::move(b5));
    return std::make_unique<ChannelConcat>(std::move(branches));
  };
  auto net = std::make_unique<Sequential>();
  net->push(std::make_unique<Conv2d>(3, 8, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(inception_block(8));  // out: 4 + 8 + 4 = 16 channels
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Flatten>());
  net->push(std::make_unique<Linear>(16 * 4 * 4, 10, rng));
  return std::make_unique<Model>("inception_mini", std::move(net),
                                 tensor::Shape{3, 16, 16}, 10);
}

ModelPtr make_vgg_mini(tensor::Rng& rng) {
  // Stacked 3x3 conv pairs + pool, then a heavy FC head — the VGG shape
  // (most parameters in the classifier, like the 491 MB original).
  auto net = std::make_unique<Sequential>();
  net->push(std::make_unique<Conv2d>(3, 8, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Conv2d>(8, 8, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Conv2d>(8, 16, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Conv2d>(16, 16, 3, 1, 1, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<MaxPool2d>(2, 2));
  net->push(std::make_unique<Flatten>());
  net->push(std::make_unique<Linear>(16 * 4 * 4, 256, rng));
  net->push(std::make_unique<ReLU>());
  net->push(std::make_unique<Dropout>(0.3, rng));
  net->push(std::make_unique<Linear>(256, 10, rng));
  return std::make_unique<Model>("vgg_mini", std::move(net),
                                 tensor::Shape{3, 16, 16}, 10);
}

}  // namespace

std::vector<std::string> model_names() {
  return {"tiny_mlp",  "small_mlp",      "mnist_cnn", "cifarnet",
          "resnet_mini", "inception_mini", "vgg_mini"};
}

ModelPtr make_model(const std::string& name, tensor::Rng& rng) {
  if (name == "tiny_mlp") return make_tiny_mlp(rng);
  if (name == "small_mlp") return make_small_mlp(rng);
  if (name == "mnist_cnn") return make_mnist_cnn(rng);
  if (name == "cifarnet") return make_cifarnet(rng);
  if (name == "resnet_mini") return make_resnet_mini(rng);
  if (name == "inception_mini") return make_inception_mini(rng);
  if (name == "vgg_mini") return make_vgg_mini(rng);
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

}  // namespace garfield::nn
