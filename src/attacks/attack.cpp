#include "attacks/attack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace garfield::attacks {

std::vector<std::string> attack_names() {
  return {"random",           "reversed",        "dropped",
          "sign_flip",        "zero",            "little_is_enough",
          "fall_of_empires",  "nan_poison"};
}

AttackPtr make_attack(const std::string& name) {
  if (name == "random") return std::make_unique<RandomAttack>();
  if (name == "reversed") return std::make_unique<ReversedAttack>();
  if (name == "dropped") return std::make_unique<DroppedAttack>();
  if (name == "sign_flip") return std::make_unique<SignFlipAttack>();
  if (name == "zero") return std::make_unique<ZeroAttack>();
  if (name == "little_is_enough")
    return std::make_unique<LittleIsEnoughAttack>();
  if (name == "fall_of_empires")
    return std::make_unique<FallOfEmpiresAttack>();
  if (name == "nan_poison") return std::make_unique<NanPoisonAttack>();
  throw std::invalid_argument("make_attack: unknown attack '" + name + "'");
}

std::optional<FlatVector> RandomAttack::craft(
    const FlatVector& honest, std::span<const FlatVector> /*others*/,
    Rng& rng) const {
  FlatVector out(honest.size());
  for (float& v : out) v = rng.normal(0.0F, scale_);
  return out;
}

std::optional<FlatVector> ReversedAttack::craft(
    const FlatVector& honest, std::span<const FlatVector> /*others*/,
    Rng& /*rng*/) const {
  FlatVector out = honest;
  tensor::scale(out, -factor_);
  return out;
}

std::optional<FlatVector> DroppedAttack::craft(
    const FlatVector& /*honest*/, std::span<const FlatVector> /*others*/,
    Rng& /*rng*/) const {
  return std::nullopt;
}

std::optional<FlatVector> SignFlipAttack::craft(
    const FlatVector& honest, std::span<const FlatVector> /*others*/,
    Rng& /*rng*/) const {
  FlatVector out = honest;
  tensor::scale(out, -1.0F);
  return out;
}

std::optional<FlatVector> ZeroAttack::craft(
    const FlatVector& honest, std::span<const FlatVector> /*others*/,
    Rng& /*rng*/) const {
  return FlatVector(honest.size(), 0.0F);
}

std::optional<FlatVector> LittleIsEnoughAttack::craft(
    const FlatVector& honest, std::span<const FlatVector> others,
    Rng& /*rng*/) const {
  if (others.empty()) return honest;  // nothing to hide inside
  const std::size_t d = honest.size();
  FlatVector mu = tensor::mean(others);
  FlatVector out(d);
  for (std::size_t j = 0; j < d; ++j) {
    double var = 0.0;
    for (const FlatVector& g : others) {
      const double dv = double(g[j]) - double(mu[j]);
      var += dv * dv;
    }
    var /= double(others.size());
    out[j] = mu[j] - z_ * float(std::sqrt(var));
  }
  return out;
}

std::optional<FlatVector> NanPoisonAttack::craft(
    const FlatVector& honest, std::span<const FlatVector> /*others*/,
    Rng& rng) const {
  FlatVector out = honest;
  const std::size_t poisoned = std::max<std::size_t>(
      1, std::size_t(fraction_ * double(out.size())));
  for (std::size_t k = 0; k < poisoned; ++k) {
    const std::size_t i = rng.index(out.size());
    out[i] = rng.bernoulli(0.5) ? std::numeric_limits<float>::quiet_NaN()
                                : std::numeric_limits<float>::infinity();
  }
  return out;
}

std::optional<FlatVector> FallOfEmpiresAttack::craft(
    const FlatVector& honest, std::span<const FlatVector> others,
    Rng& /*rng*/) const {
  if (others.empty()) {
    FlatVector out = honest;
    tensor::scale(out, -epsilon_);
    return out;
  }
  FlatVector out = tensor::mean(others);
  tensor::scale(out, -epsilon_);
  return out;
}

}  // namespace garfield::attacks
